"""Tests for the structured suite results (repro.batch.results)."""

import json

import pytest

from repro.batch.results import (
    READ_COMPAT_VERSIONS,
    SCHEMA_VERSION,
    SchemaVersionError,
    SuiteResult,
    TaskRecord,
)


def _ok_record(problem="POW9", algorithm="rcm", envelope=100, time_s=0.5):
    return TaskRecord(
        problem=problem,
        algorithm=algorithm,
        status="ok",
        seed=7,
        n=10,
        nnz=20,
        metrics={"envelope_size": envelope, "envelope_work": envelope * 3,
                 "bandwidth": 4, "max_frontwidth": 3},
        time_s=time_s,
    )


def _failed_record(problem="POW9", algorithm="boom"):
    return TaskRecord(
        problem=problem,
        algorithm=algorithm,
        status="error",
        seed=8,
        error={"type": "RuntimeError", "message": "kaboom", "traceback": "Traceback ..."},
    )


def _timeout_record(problem="POW9", algorithm="slow"):
    return TaskRecord(
        problem=problem,
        algorithm=algorithm,
        status="timeout",
        seed=9,
        time_s=2.0,
        error={"type": "TaskTimeout", "message": "task exceeded the per-task timeout of 2 s",
               "traceback": None},
    )


@pytest.fixture
def suite():
    return SuiteResult(
        problems=["POW9"],
        algorithms=["rcm", "gps", "boom"],
        scale=0.02,
        n_jobs=2,
        base_seed=0,
        records=[
            _ok_record(algorithm="rcm", envelope=100),
            _ok_record(algorithm="gps", envelope=90),
            _failed_record(),
        ],
        wall_time_s=1.25,
    )


class TestTaskRecord:
    def test_ok_flag(self):
        assert _ok_record().ok and not _failed_record().ok

    def test_to_dict_excludes_timing_on_request(self):
        payload = _ok_record().to_dict(include_timing=False)
        assert "time_s" not in payload
        assert "time_s" in _ok_record().to_dict()

    def test_dict_round_trip(self):
        record = _ok_record()
        assert TaskRecord.from_dict(record.to_dict()).to_dict() == record.to_dict()


class TestSuiteResult:
    def test_schema_version_in_payload(self, suite):
        payload = suite.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["engine"] == "repro.batch"

    def test_unsupported_schema_version_rejected(self, suite):
        payload = suite.to_dict()
        payload["schema_version"] = 999
        with pytest.raises(SchemaVersionError, match="schema version"):
            SuiteResult.from_dict(payload)

    def test_schema_version_error_is_a_value_error(self):
        assert issubclass(SchemaVersionError, ValueError)

    def test_missing_schema_version_rejected(self):
        with pytest.raises(SchemaVersionError, match="schema version"):
            SuiteResult.from_json("{}")

    def test_non_object_json_rejected_as_value_error(self):
        with pytest.raises(ValueError, match="JSON object"):
            SuiteResult.from_json("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            SuiteResult.from_json('"just a string"')

    def test_v1_artifact_still_loads(self, suite):
        assert 1 in READ_COMPAT_VERSIONS
        payload = suite.to_dict()
        payload["schema_version"] = 1
        loaded = SuiteResult.from_dict(payload)
        assert loaded.schema_version == 1
        assert loaded.shard is None
        assert [r.algorithm for r in loaded.records] == ["rcm", "gps", "boom"]

    def test_shard_round_trips_and_is_absent_when_none(self, suite):
        assert "shard" not in suite.to_dict()
        suite.shard = (2, 3)
        payload = suite.to_dict()
        assert payload["shard"] == [2, 3]
        assert SuiteResult.from_dict(payload).shard == (2, 3)
        # canonical form keeps the shard marker: it is spec, not timing
        assert suite.to_dict(include_timing=False)["shard"] == [2, 3]

    def test_timeout_record_round_trips(self):
        record = _timeout_record()
        assert not record.ok and record.timed_out
        reloaded = TaskRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert reloaded.status == "timeout"
        assert reloaded.error["type"] == "TaskTimeout"

    def test_timeouts_property_and_to_text_label(self):
        suite = SuiteResult(
            problems=["POW9"],
            algorithms=["rcm", "slow"],
            records=[_ok_record(), _timeout_record()],
        )
        assert [r.algorithm for r in suite.timeouts] == ["slow"]
        assert [r.algorithm for r in suite.failures] == ["slow"]
        assert "TIMEOUT POW9/slow: TaskTimeout" in suite.to_text()

    def test_canonical_form_drops_all_timing_fields(self, suite):
        payload = suite.to_dict(include_timing=False)
        assert "wall_time_s" not in payload and "n_jobs" not in payload
        assert all("time_s" not in record for record in payload["records"])

    def test_json_round_trip(self, suite):
        reloaded = SuiteResult.from_json(suite.to_json())
        assert reloaded.to_dict() == suite.to_dict()
        assert reloaded.records[2].error["message"] == "kaboom"

    def test_save_and_load(self, suite, tmp_path):
        path = suite.save(tmp_path / "nested" / "results.json")
        assert json.loads(path.read_text())["schema_version"] == SCHEMA_VERSION
        assert SuiteResult.load(path).to_dict() == suite.to_dict()

    def test_accessors(self, suite):
        assert [r.algorithm for r in suite.ok_records] == ["rcm", "gps"]
        assert [r.algorithm for r in suite.failures] == ["boom"]
        assert suite.record_for("pow9", "rcm").metrics["envelope_size"] == 100
        with pytest.raises(KeyError):
            suite.record_for("POW9", "nosuch")

    def test_winners_smallest_envelope_among_ok(self, suite):
        assert suite.winners() == {"POW9": "gps"}

    def test_to_text_reports_failures(self, suite):
        text = suite.to_text()
        assert "RCM" in text and "GPS" in text
        assert "FAILED POW9/boom: RuntimeError: kaboom" in text

    def test_to_rows_ranked(self, suite):
        rows = suite.to_rows()
        assert len(rows) == 2  # the failure contributes no row
        assert {(r.algorithm, r.rank) for r in rows} == {("gps", 1), ("rcm", 2)}


class TestDiff:
    def test_identical_runs_diff_clean_despite_timing(self, suite):
        other = SuiteResult.from_json(suite.to_json())
        for record in other.records:
            record.time_s += 10.0
        other.wall_time_s += 99.0
        other.n_jobs = 8
        assert suite.diff(other) == []

    def test_metric_drift_detected(self, suite):
        other = SuiteResult.from_json(suite.to_json())
        other.records[0].metrics["envelope_size"] = 101
        differences = suite.diff(other)
        assert any("POW9/rcm" in line and "envelope_size" in line for line in differences)

    def test_missing_record_detected(self, suite):
        other = SuiteResult.from_json(suite.to_json())
        other.records.pop()
        assert any("present in only one run" in line for line in suite.diff(other))

    def test_status_change_detected(self, suite):
        other = SuiteResult.from_json(suite.to_json())
        other.records[2] = _ok_record(algorithm="boom")
        assert any("status" in line for line in suite.diff(other))

    def test_header_drift_detected(self, suite):
        other = SuiteResult.from_json(suite.to_json())
        other.scale = 0.05
        assert any(line.startswith("scale") for line in suite.diff(other))

    def test_shard_drift_detected(self, suite):
        other = SuiteResult.from_json(suite.to_json())
        other.shard = (1, 3)
        assert any(line.startswith("shard") for line in suite.diff(other))

    def test_traceback_text_ignored(self, suite):
        other = SuiteResult.from_json(suite.to_json())
        other.records[2].error["traceback"] = "Traceback ... different paths/lines"
        assert suite.diff(other) == []

    def test_error_type_or_message_drift_detected(self, suite):
        other = SuiteResult.from_json(suite.to_json())
        other.records[2].error["message"] = "different kaboom"
        assert any("POW9/boom" in line and "error" in line for line in suite.diff(other))

    def test_include_timing_diff(self, suite):
        other = SuiteResult.from_json(suite.to_json())
        other.records[0].time_s += 1.0
        assert suite.diff(other) == []
        assert any("time_s" in line for line in suite.diff(other, include_timing=True))
