"""Property and unit tests for the cost-aware scheduler (repro.batch.sched).

The planner's contract, pinned here on randomized cost tables:

* every task of the input appears in **exactly one** shard (a partition —
  nothing dropped, nothing duplicated);
* the chosen plan's estimated makespan is **never worse than round-robin's**
  (the planner falls back to round-robin when the greedy LPT plan would
  lose, so the inequality holds unconditionally);
* planning is deterministic — same tasks, same cost table, same plan.
"""

from __future__ import annotations

import json

import pytest

from repro.batch import (
    BatchTask,
    CostModel,
    build_tasks,
    order_longest_first,
    plan_shards,
    run_suite,
    shard_tasks,
)
from repro.utils.rng import default_rng

# hypothesis-style randomized instances: each seed expands to one random
# cost table (heavy-tailed, with exact zeros and ties mixed in).
PROPERTY_SEEDS = range(20)


def random_cost_instance(seed: int):
    """A random task list plus a CostModel observing one cost per task."""
    rng = default_rng(910_000 + seed)
    n_tasks = int(rng.integers(1, 41))
    shard_count = int(rng.integers(1, 9))
    model = CostModel()
    tasks = []
    for index in range(n_tasks):
        problem = f"RANDOM{index}"
        kind = int(rng.integers(0, 4))
        if kind == 0:
            cost = 0.0  # degenerate: free cell
        elif kind == 1:
            cost = float(rng.choice([1.0, 2.0, 4.0]))  # ties
        elif kind == 2:
            cost = float(rng.exponential(1.0))
        else:
            cost = float(rng.uniform(0.0, 1.0)) * 10 ** int(rng.integers(0, 4))
        tasks.append(BatchTask(problem=problem, algorithm="rcm", scale=1.0,
                               index=index))
        model.observe(problem, "rcm", 1.0, cost)
    return tasks, model, shard_count


def makespan_of(shards, model) -> float:
    return max((sum(model.estimate_task(t) for t in shard) for shard in shards),
               default=0.0)


class TestPlanShardsProperties:
    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_every_task_in_exactly_one_shard(self, seed):
        tasks, model, count = random_cost_instance(seed)
        plan = plan_shards(tasks, count, model)
        assert len(plan.shards) == count
        placed = sorted(t.index for shard in plan.shards for t in shard)
        assert placed == [t.index for t in tasks]

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_makespan_never_worse_than_round_robin(self, seed):
        tasks, model, count = random_cost_instance(seed)
        plan = plan_shards(tasks, count, model)
        # the plan's own accounting...
        assert plan.makespan <= plan.round_robin_makespan
        assert plan.makespan == pytest.approx(max(plan.loads))
        # ...and an independent recomputation of both sides
        assert makespan_of(plan.shards, model) == pytest.approx(plan.makespan)
        round_robin = [shard_tasks(tasks, k, count) for k in range(1, count + 1)]
        assert makespan_of(round_robin, model) == pytest.approx(
            plan.round_robin_makespan)

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_planning_is_deterministic(self, seed):
        tasks, model, count = random_cost_instance(seed)
        first = plan_shards(tasks, count, model)
        second = plan_shards(list(tasks), count, model)
        assert first == second

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_shards_keep_canonical_task_order(self, seed):
        tasks, model, count = random_cost_instance(seed)
        for shard in plan_shards(tasks, count, model).shards:
            indices = [t.index for t in shard]
            assert indices == sorted(indices)


class TestPlanShardsEdges:
    def test_more_shards_than_tasks_leaves_empty_shards(self):
        tasks, model, _count = random_cost_instance(0)
        plan = plan_shards(tasks[:2], 5, model)
        assert sum(len(shard) for shard in plan.shards) == 2
        assert sum(1 for shard in plan.shards if not shard) == 3

    def test_empty_task_list(self):
        plan = plan_shards([], 3, CostModel())
        assert plan.shards == ((), (), ())
        assert plan.makespan == 0.0

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="shard count"):
            plan_shards([], 0, CostModel())

    def test_unbalanced_costs_beat_round_robin(self):
        """The motivating case: one expensive algorithm per problem.  The
        round-robin split puts every expensive cell on the same shard;
        LPT spreads them."""
        model = CostModel()
        tasks = []
        for p in range(4):
            for a, (algorithm, cost) in enumerate([("spectral", 10.0), ("rcm", 0.1)]):
                tasks.append(BatchTask(problem=f"P{p}", algorithm=algorithm,
                                       scale=1.0, index=len(tasks)))
                model.observe(f"P{p}", algorithm, 1.0, cost)
        plan = plan_shards(tasks, 2, model)
        # round-robin: all four 10 s cells land on shard 1 (even indices)
        assert plan.round_robin_makespan == pytest.approx(40.0)
        assert plan.makespan == pytest.approx(20.2)
        assert plan.strategy == "lpt"


class TestOrderLongestFirst:
    def test_sorts_descending_with_index_tie_break(self):
        model = CostModel()
        tasks = []
        for index, cost in enumerate([1.0, 5.0, 1.0, 3.0]):
            tasks.append(BatchTask(problem=f"P{index}", algorithm="rcm",
                                   scale=1.0, index=index))
            model.observe(f"P{index}", "rcm", 1.0, cost)
        ordered = order_longest_first(tasks, model)
        assert [t.index for t in ordered] == [1, 3, 0, 2]


class TestCostModel:
    def test_direct_observation_wins(self):
        model = CostModel()
        model.observe("POW9", "rcm", 0.02, 0.25, n=10, nnz=20)
        model.observe("POW9", "rcm", 0.02, 0.35, n=10, nnz=20)
        model.observe("POW9", "rcm", 0.02, 0.30, n=10, nnz=20)
        assert model.estimate("POW9", "rcm", 0.02) == pytest.approx(0.30)

    def test_unseen_cell_uses_algorithm_rate_and_observed_size(self):
        model = CostModel()
        # rcm costs 1e-3 s per n*nnz unit; CAN1072@0.02 has n*nnz = 200
        model.observe("POW9", "rcm", 0.02, 0.2, n=10, nnz=20)
        model.observe("CAN1072", "gps", 0.02, 9.9, n=10, nnz=20)
        assert model.estimate("CAN1072", "rcm", 0.02) == pytest.approx(0.2)

    def test_unseen_algorithm_falls_back_to_global_rate(self):
        model = CostModel()
        model.observe("POW9", "rcm", 0.02, 0.2, n=10, nnz=20)
        assert model.estimate("POW9", "sloan", 0.02) == pytest.approx(0.2)

    def test_size_rescales_across_scales_quadratically(self):
        model = CostModel()
        model.observe("POW9", "rcm", 0.1, 1.0, n=100, nnz=300)
        # at scale 0.2 both n and nnz double: n*nnz grows 4x
        assert model.estimate("POW9", "rcm", 0.2) == pytest.approx(4.0)

    def test_registry_fallback_scales_with_paper_size(self):
        """With zero observations, bigger problems still estimate costlier
        (sizes come from the registry's paper n/nnz)."""
        model = CostModel()
        small = model.estimate("POW9", "rcm", 0.05)       # paper n = 1723
        big = model.estimate("BCSSTK30", "rcm", 0.05)     # paper n = 28924
        assert big > small > 0

    def test_unregistered_problem_still_estimates(self):
        assert CostModel().estimate("NOSUCH", "rcm", 0.05) > 0

    def test_estimates_are_positive_even_for_zero_observations(self):
        model = CostModel()
        model.observe("POW9", "rcm", 0.02, 0.0)
        assert model.estimate("POW9", "rcm", 0.02) > 0

    def test_save_load_round_trip(self, tmp_path):
        model = CostModel()
        model.observe("POW9", "rcm", 0.02, 0.25, n=10, nnz=20)
        model.observe("CAN1072", "gps", None, 1.5)
        path = model.save(tmp_path / "costs.json")
        loaded = CostModel.load(path)
        assert len(loaded) == 2
        assert loaded.estimate("POW9", "rcm", 0.02) == model.estimate("POW9", "rcm", 0.02)
        assert loaded.estimate("CAN1072", "gps", None) == pytest.approx(1.5)

    def test_load_rejects_unknown_schema_version(self, tmp_path):
        path = tmp_path / "costs.json"
        path.write_text(json.dumps({"kind": "repro-cost-model",
                                    "schema_version": 99, "entries": []}))
        with pytest.raises(ValueError, match="schema version"):
            CostModel.load(path)

    def test_observe_suite_uses_ok_and_timeout_records_only(self):
        suite = run_suite(["POW9"], ("rcm",), scale=0.02)
        record = suite.records[0]
        record.status = "error"
        model = CostModel()
        model.observe_suite(suite)
        assert len(model) == 0

    def test_observe_suite_takes_timeout_as_lower_bound(self):
        suite = run_suite(["POW9"], ("rcm",), scale=0.02)
        suite.records[0].status = "timeout"
        suite.records[0].time_s = 120.0
        model = CostModel()
        model.observe_suite(suite)
        assert model.estimate("POW9", "rcm", 0.02) == pytest.approx(120.0)


class TestCostModelFromFile:
    def test_from_suite_artifact(self, tmp_path):
        suite = run_suite(["POW9"], ("rcm", "gps"), scale=0.02)
        path = suite.save(tmp_path / "results.json")
        model = CostModel.from_file(path)
        assert len(model) == 2

    def test_from_cost_model_file(self, tmp_path):
        original = CostModel()
        original.observe("POW9", "rcm", 0.02, 0.25)
        path = original.save(tmp_path / "costs.json")
        assert len(CostModel.from_file(path)) == 1

    def test_from_bench_artifact(self, tmp_path):
        artifact = {
            "kind": "repro-bench", "schema_version": 1,
            "kernels": [
                {"name": "orderings/rcm/CAN1072@0.5", "best_s": 0.02},
                {"name": "graph/mis/PWT@0.1", "best_s": 0.01},  # not a cell
                {"name": "orderings/bad", "best_s": 0.01},      # malformed
            ],
            "suite": {"scale": 0.05, "cells": [
                {"problem": "POW9", "algorithm": "rcm", "status": "ok",
                 "time_s": 0.004, "n": 86, "nnz": 262},
                {"problem": "POW9", "algorithm": "gps", "status": "error",
                 "time_s": 0.1},
            ]},
        }
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(artifact))
        model = CostModel.from_file(path)
        assert len(model) == 2  # the suite ok cell + the ordering kernel
        assert model.estimate("CAN1072", "rcm", 0.5) == pytest.approx(0.02)
        assert model.estimate("POW9", "rcm", 0.05) == pytest.approx(0.004)

    def test_from_stream_file_dedupes_retries(self, tmp_path):
        from repro.batch import StreamWriter, TaskRecord, stream_header

        path = tmp_path / "run.jsonl"
        header = stream_header(["POW9"], ["rcm"], scale=0.02, base_seed=0,
                               shard=None, total_tasks=1)
        with StreamWriter(path, header) as writer:
            writer.write_record(TaskRecord(problem="POW9", algorithm="rcm",
                                           status="timeout", time_s=1.0))
            writer.write_record(TaskRecord(problem="POW9", algorithm="rcm",
                                           status="ok", time_s=7.5))
        model = CostModel.from_file(path)
        assert len(model) == 1
        assert model.estimate("POW9", "rcm", 0.02) == pytest.approx(7.5)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.txt"
        path.write_text("not json\nand not a stream either\n")
        with pytest.raises(ValueError, match="neither"):
            CostModel.from_file(path)


class TestEngineIntegration:
    PROBLEMS = ["POW9", "CAN1072"]
    ALGORITHMS = ("rcm", "gps")

    def _model(self) -> CostModel:
        model = CostModel()
        suite = run_suite(self.PROBLEMS, self.ALGORITHMS, scale=0.02)
        model.observe_suite(suite)
        return model

    def test_cost_balanced_shards_merge_byte_identically(self):
        from repro.batch import merge_results

        model = self._model()
        reference = run_suite(self.PROBLEMS, self.ALGORITHMS, scale=0.02)
        shards = [run_suite(self.PROBLEMS, self.ALGORITHMS, scale=0.02,
                            shard=(k, 3), balance="cost", cost_model=model)
                  for k in (1, 2, 3)]
        assert sorted(len(s.records) for s in shards) != []  # all slices ran
        merged = merge_results(shards)
        assert merged.to_json(include_timing=False) == \
            reference.to_json(include_timing=False)

    def test_cost_dispatch_does_not_change_results(self):
        reference = run_suite(self.PROBLEMS, self.ALGORITHMS, scale=0.02)
        dispatched = run_suite(self.PROBLEMS, self.ALGORITHMS, scale=0.02,
                               cost_model=self._model())
        assert dispatched.to_json(include_timing=False) == \
            reference.to_json(include_timing=False)

    def test_invalid_balance_rejected(self):
        with pytest.raises(ValueError, match="balance"):
            run_suite(["POW9"], ("rcm",), scale=0.02, balance="luck")

    def test_cost_balance_shard_out_of_range(self):
        with pytest.raises(ValueError, match="shard index"):
            run_suite(["POW9"], ("rcm",), scale=0.02, shard=(4, 2),
                      balance="cost")

    def test_invalid_retry_and_growth_rejected(self):
        with pytest.raises(ValueError, match="retry_timeouts"):
            run_suite(["POW9"], ("rcm",), scale=0.02, retry_timeouts=-1)
        with pytest.raises(ValueError, match="timeout_growth"):
            run_suite(["POW9"], ("rcm",), scale=0.02, timeout_growth=0.0)

    def test_build_tasks_matches_engine_expansion(self):
        """plan_shards in the CLI and run_suite's internal planning agree
        because both start from the same deterministic expansion."""
        tasks = build_tasks(self.PROBLEMS, self.ALGORITHMS, scale=0.02)
        model = self._model()
        plan = plan_shards(tasks, 2, model)
        shard1 = run_suite(self.PROBLEMS, self.ALGORITHMS, scale=0.02,
                           shard=(1, 2), balance="cost", cost_model=model)
        assert [(r.problem, r.algorithm) for r in shard1.records] == \
            [(t.problem, t.algorithm) for t in plan.shards[0]]


class TestCostModelFingerprint:
    def test_fingerprint_stable_and_order_insensitive(self):
        a, b = CostModel(), CostModel()
        a.observe("POW9", "rcm", 0.02, 0.25, n=10, nnz=20)
        a.observe("CAN1072", "gps", 0.02, 1.5)
        b.observe("CAN1072", "gps", 0.02, 1.5)
        b.observe("POW9", "rcm", 0.02, 0.25, n=10, nnz=20)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_with_observations(self):
        a, b = CostModel(), CostModel()
        a.observe("POW9", "rcm", 0.02, 0.25)
        b.observe("POW9", "rcm", 0.02, 0.26)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() != CostModel().fingerprint()

    def test_header_only_stream_loads_as_empty_model(self, tmp_path):
        """A run killed before its first record leaves a one-line stream;
        from_file must treat it as a (zero-observation) stream, not misparse
        the header as an empty suite artifact."""
        import json as _json

        from repro.batch import stream_header

        path = tmp_path / "dead.jsonl"
        header = stream_header(["POW9"], ["rcm"], scale=0.02, base_seed=0,
                               shard=None, total_tasks=1)
        path.write_text(_json.dumps(header, sort_keys=True) + "\n")
        model = CostModel.from_file(path)
        assert len(model) == 0
