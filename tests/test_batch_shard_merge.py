"""Shard partitioning and artifact merging (repro.batch.tasks / results).

Covers the edge cases the distributed workflow can hit: overlapping shard
sets, mismatched specifications and schema versions, empty shards,
merge-of-one, shard counts exceeding the task count, and merging JSONL
streams whose retried cells must dedupe to the final attempt.
"""

import json

import pytest

from repro.batch import (
    SuiteResult,
    build_tasks,
    dedupe_records,
    merge_results,
    parse_shard,
    run_suite,
    shard_tasks,
    stream_header,
    suite_from_stream,
)

SCALE = 0.02
PROBLEMS = ["POW9", "CAN1072"]
ALGORITHMS = ("rcm", "gps")


def _shard_runs(count):
    return [
        run_suite(PROBLEMS, ALGORITHMS, scale=SCALE, shard=(k, count))
        for k in range(1, count + 1)
    ]


class TestParseShard:
    def test_valid(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("3/8") == (3, 8)

    @pytest.mark.parametrize("text", ["", "3", "0/2", "4/3", "-1/2", "1/0", "a/b", "1/2/3"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)


class TestShardTasks:
    def test_round_robin_partition_is_disjoint_and_complete(self):
        tasks = build_tasks(PROBLEMS, ALGORITHMS, scale=SCALE)
        seen = []
        for k in (1, 2, 3):
            seen.extend(t.index for t in shard_tasks(tasks, k, 3))
        assert sorted(seen) == [t.index for t in tasks]

    def test_shard_of_one_is_identity(self):
        tasks = build_tasks(PROBLEMS, ALGORITHMS, scale=SCALE)
        assert shard_tasks(tasks, 1, 1) == tasks

    def test_more_shards_than_tasks_gives_empty_slices(self):
        tasks = build_tasks(["POW9"], ("rcm",), scale=SCALE)
        assert shard_tasks(tasks, 1, 5) == tasks
        for k in (2, 3, 4, 5):
            assert shard_tasks(tasks, k, 5) == []

    def test_out_of_range_rejected(self):
        tasks = build_tasks(PROBLEMS, ALGORITHMS, scale=SCALE)
        with pytest.raises(ValueError, match="shard index"):
            shard_tasks(tasks, 0, 3)
        with pytest.raises(ValueError, match="shard index"):
            shard_tasks(tasks, 4, 3)
        with pytest.raises(ValueError, match="shard count"):
            shard_tasks(tasks, 1, 0)


class TestShardedRunSuite:
    def test_shard_recorded_in_result_and_artifact(self):
        shard = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE, shard=(2, 2))
        assert shard.shard == (2, 2)
        assert shard.problems == PROBLEMS  # full spec, partial records
        assert len(shard.records) == 2
        reloaded = SuiteResult.from_json(shard.to_json())
        assert reloaded.shard == (2, 2)

    def test_empty_shard_runs_clean(self):
        shard = run_suite(["POW9"], ("rcm",), scale=SCALE, shard=(3, 5))
        assert shard.records == [] and shard.failures == []
        assert SuiteResult.from_json(shard.to_json()).shard == (3, 5)

    def test_invalid_shard_rejected_up_front(self):
        with pytest.raises(ValueError, match="shard index"):
            run_suite(PROBLEMS, ALGORITHMS, scale=SCALE, shard=(3, 2))


class TestMerge:
    def test_merge_reproduces_single_run_canonically(self):
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        merged = merge_results(_shard_runs(3))
        assert merged.to_json(include_timing=False) == full.to_json(include_timing=False)

    def test_merge_of_one_complete_artifact_is_identity(self):
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        merged = merge_results([full])
        assert merged.to_json(include_timing=False) == full.to_json(include_timing=False)

    def test_merge_includes_empty_shards(self):
        # 4 tasks over 6 shards: shards 5 and 6 are empty but still required
        shards = [
            run_suite(PROBLEMS, ALGORITHMS, scale=SCALE, shard=(k, 6))
            for k in range(1, 7)
        ]
        assert [len(s.records) for s in shards] == [1, 1, 1, 1, 0, 0]
        merged = merge_results(shards)
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        assert merged.to_json(include_timing=False) == full.to_json(include_timing=False)

    def test_merge_survives_json_round_trip(self, tmp_path):
        paths = []
        for k, shard in enumerate(_shard_runs(2), start=1):
            paths.append(shard.save(tmp_path / f"shard{k}.json"))
        merged = merge_results([SuiteResult.load(p) for p in paths])
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        assert merged.to_json(include_timing=False) == full.to_json(include_timing=False)

    def test_merge_aggregates_timing(self):
        shards = _shard_runs(2)
        merged = merge_results(shards)
        assert merged.wall_time_s == pytest.approx(sum(s.wall_time_s for s in shards))
        assert merged.n_jobs == max(s.n_jobs for s in shards)

    def test_nothing_to_merge_rejected(self):
        with pytest.raises(ValueError, match="nothing to merge"):
            merge_results([])

    def test_overlapping_shards_rejected(self):
        shards = _shard_runs(2)
        with pytest.raises(ValueError, match="overlapping shards"):
            merge_results([shards[0], shards[0], shards[1]])

    def test_missing_shard_rejected(self):
        shards = _shard_runs(3)
        with pytest.raises(ValueError, match="incomplete shard set"):
            merge_results(shards[:2])

    def test_spec_mismatch_rejected(self):
        a = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE, shard=(1, 2))
        b = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE, base_seed=1, shard=(2, 2))
        with pytest.raises(ValueError, match="specification mismatch.*base_seed"):
            merge_results([a, b])

    def test_record_outside_spec_rejected(self):
        a = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        b = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        b.records[0].algorithm = "nosuch"
        with pytest.raises(ValueError, match="outside the suite specification"):
            merge_results([a, b])

    def test_v1_artifact_merges_with_v2(self):
        """v1 read-compat extends to merging: a v1 shard + a v2 shard merge."""
        shards = _shard_runs(2)
        payload = shards[0].to_dict()
        payload["schema_version"] = 1
        del payload["shard"]
        v1_shard = SuiteResult.from_dict(payload)
        merged = merge_results([v1_shard, shards[1]])
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        assert merged.to_json(include_timing=False) == full.to_json(include_timing=False)


def _stream_lines(path, header: dict, records: list) -> None:
    """Write a raw JSONL stream file line by line (no StreamWriter — the
    regression cases below need full control over what each line says)."""
    lines = [json.dumps(header, sort_keys=True)]
    lines += [json.dumps({"kind": "record", **record}, sort_keys=True)
              for record in records]
    path.write_text("\n".join(lines) + "\n")


class TestMergeRetriedStream:
    """Regression: a stream carrying a timeout record *superseded* by a
    later attempt of the same cell (the ``--retry-timeouts`` shape) must
    merge to exactly the final attempt — one record per cell, last wins."""

    def _header(self, **overrides):
        base = stream_header(["POW9"], ["rcm", "gps"], scale=SCALE,
                             base_seed=0, shard=None, total_tasks=2)
        base.update(overrides)
        return base

    def _record(self, algorithm: str, status: str, **fields) -> dict:
        record = {"problem": "POW9", "algorithm": algorithm, "status": status,
                  "seed": 1, "n": 5, "nnz": 9, "metrics": {}, "time_s": 0.5,
                  "error": None}
        record.update(fields)
        return record

    def test_hand_built_retried_stream_dedupes_to_final_attempt(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _stream_lines(path, self._header(), [
            self._record("rcm", "timeout",
                         error={"type": "TaskTimeout", "message": "2 s",
                                "traceback": None},
                         metrics={}, n=0, nnz=0),
            self._record("gps", "ok", metrics={"envelope_size": 11}),
            # the escalated retry of POW9/rcm, appended later in the stream
            self._record("rcm", "ok", metrics={"envelope_size": 7}, time_s=1.9),
        ])
        merged = merge_results([suite_from_stream(path)])
        assert len(merged.records) == 2
        final = merged.record_for("POW9", "rcm")
        assert final.status == "ok"
        assert final.metrics == {"envelope_size": 7}
        assert final.time_s == pytest.approx(1.9)
        assert merged.failures == []

    def test_retry_that_never_succeeded_keeps_last_timeout(self, tmp_path):
        path = tmp_path / "run.jsonl"
        timeout = {"type": "TaskTimeout", "message": "limit", "traceback": None}
        _stream_lines(path, self._header(), [
            self._record("rcm", "timeout", error=timeout, time_s=1.0),
            self._record("gps", "ok"),
            self._record("rcm", "timeout", error=timeout, time_s=2.0),
        ])
        merged = merge_results([suite_from_stream(path)])
        final = merged.record_for("POW9", "rcm")
        assert final.status == "timeout"
        assert final.time_s == pytest.approx(2.0)  # the *escalated* attempt

    def test_stream_without_retries_round_trips_unchanged(self, tmp_path):
        path = tmp_path / "run.jsonl"
        records = [self._record("rcm", "ok"), self._record("gps", "ok")]
        _stream_lines(path, self._header(), records)
        suite = suite_from_stream(path)
        assert [(r.problem, r.algorithm) for r in suite.records] == \
            [("POW9", "rcm"), ("POW9", "gps")]

    def test_incomplete_retried_stream_still_fails_coverage(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _stream_lines(path, self._header(), [
            self._record("rcm", "timeout"),
            self._record("rcm", "ok"),
        ])
        with pytest.raises(ValueError, match="incomplete shard set"):
            merge_results([suite_from_stream(path)])

    def test_sharded_stream_keeps_its_shard_marker(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _stream_lines(path, self._header(shard=[1, 2], total_tasks=1),
                      [self._record("rcm", "ok")])
        assert suite_from_stream(path).shard == (1, 2)

    def test_unsupported_stream_schema_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _stream_lines(path, self._header(schema_version=99), [])
        with pytest.raises(ValueError, match="schema version"):
            suite_from_stream(path)


class TestDedupeRecords:
    def test_empty(self):
        assert dedupe_records([]) == []

    def test_last_attempt_wins_order_preserved(self):
        from repro.batch import TaskRecord

        records = [
            TaskRecord(problem="A", algorithm="x", status="timeout"),
            TaskRecord(problem="B", algorithm="x", status="ok"),
            TaskRecord(problem="A", algorithm="x", status="timeout", time_s=2.0),
            TaskRecord(problem="A", algorithm="x", status="ok", time_s=4.0),
        ]
        deduped = dedupe_records(records)
        assert [(r.problem, r.status) for r in deduped] == \
            [("A", "ok"), ("B", "ok")]
        assert deduped[0].time_s == pytest.approx(4.0)


class TestMergePartial:
    """``merge_results(allow_missing=True)`` — the ``--allow-partial`` path:
    torn shards merge with explicit loss accounting instead of failing."""

    def test_missing_cells_counted_not_fatal(self):
        shards = _shard_runs(3)
        with pytest.raises(ValueError, match="incomplete shard set"):
            merge_results(shards[:2])
        merged = merge_results(shards[:2], allow_missing=True)
        lost = 4 - sum(len(s.records) for s in shards[:2])
        assert merged.partial == {"missing_cells": lost}
        assert len(merged.records) == 4 - lost
        # present records keep canonical cross-product order
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        kept = {(r.problem, r.algorithm) for r in merged.records}
        expected = [r for r in full.records
                    if (r.problem, r.algorithm) in kept]
        assert ([(r.problem, r.algorithm) for r in merged.records]
                == [(r.problem, r.algorithm) for r in expected])

    def test_complete_set_stays_unmarked_even_when_allowed(self):
        merged = merge_results(_shard_runs(2), allow_missing=True)
        assert merged.partial is None
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        assert (merged.to_json(include_timing=False)
                == full.to_json(include_timing=False))

    def test_per_input_loss_counters_aggregate(self, tmp_path):
        # A shard stream whose torn line dropped one cell: the merged
        # artifact carries *both* the dropped-line count and the cell loss.
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        from repro.batch import StreamWriter, stream_header as make_header

        path = tmp_path / "shard.jsonl"
        header = make_header(PROBLEMS, list(ALGORITHMS), scale=SCALE,
                             base_seed=0, shard=None, total_tasks=4)
        with StreamWriter(path, header) as writer:
            for record in full.records:
                writer.write_record(record)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:25]                  # tear one mid-file record
        path.write_text("\n".join(lines) + "\n")

        salvaged = suite_from_stream(path, allow_partial=True)
        assert salvaged.partial == {"dropped_lines": 1}
        merged = merge_results([salvaged], allow_missing=True)
        assert merged.partial == {"dropped_lines": 1, "missing_cells": 1}

    def test_partial_marker_survives_artifact_round_trip(self, tmp_path):
        shards = _shard_runs(3)
        merged = merge_results(shards[:2], allow_missing=True)
        path = merged.save(tmp_path / "partial.json")
        reloaded = SuiteResult.load(path)
        assert reloaded.partial == merged.partial
        payload = json.loads(path.read_text())
        assert payload["partial"] == {k: int(v)
                                      for k, v in merged.partial.items()}
