"""Streaming result collection, resume, and per-task timeouts
(repro.batch.stream / repro.batch.engine).
"""

import json
import time

import pytest

from repro.batch import (
    StreamWriter,
    build_tasks,
    iter_suite,
    read_stream,
    run_suite,
    stream_header,
    validate_stream_header,
)
from repro.batch.results import SchemaVersionError
from repro.orderings.registry import ORDERING_ALGORITHMS

SCALE = 0.02
PROBLEMS = ["POW9", "CAN1072"]
ALGORITHMS = ("rcm", "gps")


def _header(**overrides):
    base = dict(
        problems=["POW9", "CAN1072"],
        algorithms=list(ALGORITHMS),
        scale=SCALE,
        base_seed=0,
        shard=None,
        total_tasks=4,
    )
    base.update(overrides)
    return stream_header(base.pop("problems"), base.pop("algorithms"), **base)


class TestIterSuite:
    def test_serial_yields_in_task_order(self):
        tasks = build_tasks(PROBLEMS, ALGORITHMS, scale=SCALE)
        indices = [task.index for task, _record in iter_suite(tasks, n_jobs=1)]
        assert indices == [0, 1, 2, 3]

    def test_parallel_yields_every_task_once(self):
        tasks = build_tasks(PROBLEMS, ALGORITHMS, scale=SCALE)
        pairs = list(iter_suite(tasks, n_jobs=2))
        assert sorted(task.index for task, _record in pairs) == [0, 1, 2, 3]
        assert all(record.ok for _task, record in pairs)

    def test_invalid_timeout_rejected(self):
        tasks = build_tasks(["POW9"], ("rcm",), scale=SCALE)
        with pytest.raises(ValueError, match="timeout"):
            list(iter_suite(tasks, timeout=0))


class TestOnRecord:
    def test_callback_sees_every_record_and_counts(self):
        seen = []
        suite = run_suite(
            PROBLEMS, ALGORITHMS, scale=SCALE,
            on_record=lambda record, done, total: seen.append((done, total, record.status)),
        )
        assert [done for done, _total, _status in seen] == [1, 2, 3, 4]
        assert all(total == 4 for _done, total, _status in seen)
        assert len(suite.records) == 4


class TestTimeout:
    def test_sleeping_task_yields_timeout_record_without_stalling(self, monkeypatch):
        monkeypatch.setitem(ORDERING_ALGORITHMS, "sleepy", lambda p: time.sleep(60))
        start = time.monotonic()
        suite = run_suite(["POW9"], ("rcm", "sleepy"), scale=SCALE,
                          n_jobs=2, timeout=1.0)
        elapsed = time.monotonic() - start
        assert elapsed < 30  # nowhere near the 60 s sleep
        by_algorithm = {r.algorithm: r for r in suite.records}
        assert by_algorithm["rcm"].ok
        record = by_algorithm["sleepy"]
        assert record.status == "timeout" and record.timed_out
        assert record.error["type"] == "TaskTimeout"
        assert suite.timeouts == [record]

    def test_fast_tasks_unaffected_by_timeout(self):
        with_limit = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE, timeout=120.0)
        without = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        assert with_limit.to_json(include_timing=False) == without.to_json(include_timing=False)

    def test_serial_run_with_timeout_uses_worker_process(self, monkeypatch):
        monkeypatch.setitem(ORDERING_ALGORITHMS, "sleepy", lambda p: time.sleep(60))
        suite = run_suite(["POW9"], ("sleepy", "rcm"), scale=SCALE,
                          n_jobs=1, timeout=0.5)
        statuses = {r.algorithm: r.status for r in suite.records}
        assert statuses == {"sleepy": "timeout", "rcm": "ok"}


class TestStreamFile:
    def test_writer_then_reader_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        suite = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        with StreamWriter(path, _header()) as writer:
            for record in suite.records:
                writer.write_record(record)
        header, records = read_stream(path)
        assert header["total_tasks"] == 4
        assert [r.to_dict() for r in records] == [r.to_dict() for r in suite.records]

    def test_truncated_final_line_ignored(self, tmp_path):
        path = tmp_path / "run.jsonl"
        suite = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        with StreamWriter(path, _header()) as writer:
            for record in suite.records:
                writer.write_record(record)
        text = path.read_text()
        path.write_text(text[:-40])  # kill mid-write
        _header_read, records = read_stream(path)
        assert len(records) == len(suite.records) - 1

    def test_append_after_truncation_drops_partial_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        suite = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        with StreamWriter(path, _header()) as writer:
            for record in suite.records[:2]:
                writer.write_record(record)
        path.write_bytes(path.read_bytes()[:-30])  # truncated final record
        with StreamWriter(path, _header(), append=True) as writer:
            writer.write_record(suite.records[1])
            writer.write_record(suite.records[2])
        _header_read, records = read_stream(path)
        keys = [(r.problem, r.algorithm) for r in records]
        assert keys == [(r.problem, r.algorithm) for r in suite.records[:3]]

    def test_corrupt_middle_line_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = [json.dumps(_header()), "{garbage", json.dumps({"kind": "record",
                 "problem": "POW9", "algorithm": "rcm"})]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            read_stream(path)

    def test_record_line_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps(_header()) + "\n"
                        + json.dumps({"kind": "record"}) + "\n"
                        + json.dumps({"kind": "record", "problem": "POW9",
                                      "algorithm": "rcm"}) + "\n")
        with pytest.raises(ValueError, match="invalid record line"):
            read_stream(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps(_header()) + "\n[1, 2]\n"
                        + json.dumps({"kind": "record", "problem": "POW9",
                                      "algorithm": "rcm"}) + "\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            read_stream(path)

    def test_empty_or_headerless_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_stream(empty)
        headerless = tmp_path / "headerless.jsonl"
        headerless.write_text(json.dumps({"kind": "record", "problem": "POW9",
                                          "algorithm": "rcm"}) + "\n")
        with pytest.raises(ValueError, match="header"):
            read_stream(headerless)


class TestHeaderValidation:
    def test_matching_header_passes(self):
        validate_stream_header(_header(), _header())

    @pytest.mark.parametrize("field, value", [
        ("problems", ["POW9"]),
        ("algorithms", ["rcm"]),
        ("scale", 0.05),
        ("base_seed", 3),
        ("shard", (1, 2)),
    ])
    def test_spec_mismatch_rejected(self, field, value):
        with pytest.raises(ValueError, match="different suite"):
            validate_stream_header(_header(**{field: value}), _header())

    def test_schema_version_mismatch_rejected(self):
        stale = _header()
        stale["schema_version"] = 1
        with pytest.raises(SchemaVersionError, match="schema version"):
            validate_stream_header(stale, _header())


class TestResume:
    def test_resume_reuses_completed_and_runs_rest(self, tmp_path):
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        completed = full.records[:3]
        executed = []
        resumed = run_suite(
            PROBLEMS, ALGORITHMS, scale=SCALE, completed=completed,
            on_record=lambda record, done, total: executed.append(record),
        )
        # reused records come back verbatim (same objects), the rest fresh
        assert resumed.records[:3] == completed
        assert resumed.to_json(include_timing=False) == full.to_json(include_timing=False)
        assert len(executed) == 4

    def test_resume_after_kill_round_trip(self, tmp_path):
        """Acceptance path: stream, kill mid-write, resume from the stream."""
        path = tmp_path / "run.jsonl"
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        with StreamWriter(path, _header()) as writer:
            for record in full.records:
                writer.write_record(record)
        path.write_bytes(path.read_bytes()[:-25])  # the kill
        header, completed = read_stream(path)
        validate_stream_header(header, _header())
        assert len(completed) == 3
        resumed = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE, completed=completed)
        assert resumed.to_json(include_timing=False) == full.to_json(include_timing=False)
