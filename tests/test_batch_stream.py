"""Streaming result collection, resume, and per-task timeouts
(repro.batch.stream / repro.batch.engine).
"""

import json
import time

import pytest

from repro.batch import (
    StreamWriter,
    build_tasks,
    iter_suite,
    read_stream,
    run_suite,
    stream_header,
    validate_stream_header,
)
from repro.batch.results import SchemaVersionError
from repro.orderings.registry import ORDERING_ALGORITHMS

SCALE = 0.02
PROBLEMS = ["POW9", "CAN1072"]
ALGORITHMS = ("rcm", "gps")


def _header(**overrides):
    base = dict(
        problems=["POW9", "CAN1072"],
        algorithms=list(ALGORITHMS),
        scale=SCALE,
        base_seed=0,
        shard=None,
        total_tasks=4,
    )
    base.update(overrides)
    return stream_header(base.pop("problems"), base.pop("algorithms"), **base)


class TestIterSuite:
    def test_serial_yields_in_task_order(self):
        tasks = build_tasks(PROBLEMS, ALGORITHMS, scale=SCALE)
        indices = [task.index for task, _record in iter_suite(tasks, n_jobs=1)]
        assert indices == [0, 1, 2, 3]

    def test_parallel_yields_every_task_once(self):
        tasks = build_tasks(PROBLEMS, ALGORITHMS, scale=SCALE)
        pairs = list(iter_suite(tasks, n_jobs=2))
        assert sorted(task.index for task, _record in pairs) == [0, 1, 2, 3]
        assert all(record.ok for _task, record in pairs)

    def test_invalid_timeout_rejected(self):
        tasks = build_tasks(["POW9"], ("rcm",), scale=SCALE)
        with pytest.raises(ValueError, match="timeout"):
            list(iter_suite(tasks, timeout=0))


class TestOnRecord:
    def test_callback_sees_every_record_and_counts(self):
        seen = []
        suite = run_suite(
            PROBLEMS, ALGORITHMS, scale=SCALE,
            on_record=lambda record, done, total: seen.append((done, total, record.status)),
        )
        assert [done for done, _total, _status in seen] == [1, 2, 3, 4]
        assert all(total == 4 for _done, total, _status in seen)
        assert len(suite.records) == 4


class TestTimeout:
    def test_sleeping_task_yields_timeout_record_without_stalling(self, monkeypatch):
        monkeypatch.setitem(ORDERING_ALGORITHMS, "sleepy", lambda p: time.sleep(60))
        start = time.monotonic()
        suite = run_suite(["POW9"], ("rcm", "sleepy"), scale=SCALE,
                          n_jobs=2, timeout=1.0)
        elapsed = time.monotonic() - start
        assert elapsed < 30  # nowhere near the 60 s sleep
        by_algorithm = {r.algorithm: r for r in suite.records}
        assert by_algorithm["rcm"].ok
        record = by_algorithm["sleepy"]
        assert record.status == "timeout" and record.timed_out
        assert record.error["type"] == "TaskTimeout"
        assert suite.timeouts == [record]

    def test_fast_tasks_unaffected_by_timeout(self):
        with_limit = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE, timeout=120.0)
        without = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        assert with_limit.to_json(include_timing=False) == without.to_json(include_timing=False)

    def test_serial_run_with_timeout_uses_worker_process(self, monkeypatch):
        monkeypatch.setitem(ORDERING_ALGORITHMS, "sleepy", lambda p: time.sleep(60))
        suite = run_suite(["POW9"], ("sleepy", "rcm"), scale=SCALE,
                          n_jobs=1, timeout=0.5)
        statuses = {r.algorithm: r.status for r in suite.records}
        assert statuses == {"sleepy": "timeout", "rcm": "ok"}


class TestStreamFile:
    def test_writer_then_reader_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        suite = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        with StreamWriter(path, _header()) as writer:
            for record in suite.records:
                writer.write_record(record)
        header, records = read_stream(path)
        assert header["total_tasks"] == 4
        assert [r.to_dict() for r in records] == [r.to_dict() for r in suite.records]

    def test_truncated_final_line_ignored(self, tmp_path):
        path = tmp_path / "run.jsonl"
        suite = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        with StreamWriter(path, _header()) as writer:
            for record in suite.records:
                writer.write_record(record)
        text = path.read_text()
        path.write_text(text[:-40])  # kill mid-write
        _header_read, records = read_stream(path)
        assert len(records) == len(suite.records) - 1

    def test_truncated_final_line_with_trailing_blanks_ignored(self, tmp_path):
        # Regression: the tolerance used to compare against the count of
        # *physical* lines, so a truncated record followed by trailing
        # blank/whitespace lines (a killed writer's tail) read as mid-file
        # corruption instead of resuming.
        path = tmp_path / "run.jsonl"
        suite = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        with StreamWriter(path, _header()) as writer:
            for record in suite.records:
                writer.write_record(record)
        text = path.read_text()
        path.write_text(text[:-40] + "\n   \n\n")
        _header_read, records = read_stream(path)
        assert len(records) == len(suite.records) - 1

    def test_read_jsonl_objects_tolerates_only_the_tail(self, tmp_path):
        from repro.batch import read_jsonl_objects
        from repro.batch.stream import TruncatedStreamError

        path = tmp_path / "lines.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"c": 3')  # mid-record kill
        assert read_jsonl_objects(path) == [{"a": 1}, {"b": 2}]

        path.write_text('{"a": 1}\n{"b": 2')
        assert read_jsonl_objects(path) == [{"a": 1}]

        path.write_text('{"a": 1\n{"b": 2}\n')  # damage NOT at the tail
        with pytest.raises(ValueError, match="corrupt"):
            read_jsonl_objects(path)

        path.write_text("")
        with pytest.raises(TruncatedStreamError):
            read_jsonl_objects(path)
        path.write_text('{"a": 1')  # no complete line at all
        with pytest.raises(TruncatedStreamError):
            read_jsonl_objects(path)

    def test_append_after_truncation_drops_partial_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        suite = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        with StreamWriter(path, _header()) as writer:
            for record in suite.records[:2]:
                writer.write_record(record)
        path.write_bytes(path.read_bytes()[:-30])  # truncated final record
        with StreamWriter(path, _header(), append=True) as writer:
            writer.write_record(suite.records[1])
            writer.write_record(suite.records[2])
        _header_read, records = read_stream(path)
        keys = [(r.problem, r.algorithm) for r in records]
        assert keys == [(r.problem, r.algorithm) for r in suite.records[:3]]

    def test_corrupt_middle_line_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = [json.dumps(_header()), "{garbage", json.dumps({"kind": "record",
                 "problem": "POW9", "algorithm": "rcm"})]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            read_stream(path)

    def test_record_line_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps(_header()) + "\n"
                        + json.dumps({"kind": "record"}) + "\n"
                        + json.dumps({"kind": "record", "problem": "POW9",
                                      "algorithm": "rcm"}) + "\n")
        with pytest.raises(ValueError, match="invalid record line"):
            read_stream(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps(_header()) + "\n[1, 2]\n"
                        + json.dumps({"kind": "record", "problem": "POW9",
                                      "algorithm": "rcm"}) + "\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            read_stream(path)

    def test_empty_or_headerless_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_stream(empty)
        headerless = tmp_path / "headerless.jsonl"
        headerless.write_text(json.dumps({"kind": "record", "problem": "POW9",
                                          "algorithm": "rcm"}) + "\n")
        with pytest.raises(ValueError, match="header"):
            read_stream(headerless)


class TestHeaderValidation:
    def test_matching_header_passes(self):
        validate_stream_header(_header(), _header())

    @pytest.mark.parametrize("field, value", [
        ("problems", ["POW9"]),
        ("algorithms", ["rcm"]),
        ("scale", 0.05),
        ("base_seed", 3),
        ("shard", (1, 2)),
    ])
    def test_spec_mismatch_rejected(self, field, value):
        with pytest.raises(ValueError, match="different suite"):
            validate_stream_header(_header(**{field: value}), _header())

    def test_schema_version_mismatch_rejected(self):
        stale = _header()
        stale["schema_version"] = 1
        with pytest.raises(SchemaVersionError, match="schema version"):
            validate_stream_header(stale, _header())


class TestResume:
    def test_resume_reuses_completed_and_runs_rest(self, tmp_path):
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        completed = full.records[:3]
        executed = []
        resumed = run_suite(
            PROBLEMS, ALGORITHMS, scale=SCALE, completed=completed,
            on_record=lambda record, done, total: executed.append(record),
        )
        # reused records come back verbatim (same objects), the rest fresh
        assert resumed.records[:3] == completed
        assert resumed.to_json(include_timing=False) == full.to_json(include_timing=False)
        assert len(executed) == 4

    def test_resume_after_kill_round_trip(self, tmp_path):
        """Acceptance path: stream, kill mid-write, resume from the stream."""
        path = tmp_path / "run.jsonl"
        full = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        with StreamWriter(path, _header()) as writer:
            for record in full.records:
                writer.write_record(record)
        path.write_bytes(path.read_bytes()[:-25])  # the kill
        header, completed = read_stream(path)
        validate_stream_header(header, _header())
        assert len(completed) == 3
        resumed = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE, completed=completed)
        assert resumed.to_json(include_timing=False) == full.to_json(include_timing=False)


class TestRetryEscalation:
    """Timeout-retry escalation (run_suite retry_timeouts / timeout_growth)."""

    @staticmethod
    def _sleepy_then_succeed(monkeypatch, sleep_s: float):
        monkeypatch.setitem(
            ORDERING_ALGORITHMS, "sleepy",
            lambda p: time.sleep(sleep_s) or ORDERING_ALGORITHMS["rcm"](p),
        )

    def test_escalated_retry_lands_final_ok_record(self, monkeypatch):
        self._sleepy_then_succeed(monkeypatch, 1.0)
        attempts = []
        suite = run_suite(
            ["POW9"], ("rcm", "sleepy"), scale=SCALE,
            timeout=0.3, retry_timeouts=2, timeout_growth=8.0,
            on_record=lambda record, done, total: attempts.append(
                (record.algorithm, record.status)),
        )
        # exactly one final record per cell, the sleepy one now ok
        assert [(r.algorithm, r.status) for r in suite.records] == \
            [("rcm", "ok"), ("sleepy", "ok")]
        assert suite.timeouts == []
        # ...but on_record saw the superseded timeout attempt too
        assert ("sleepy", "timeout") in attempts
        assert attempts[-1] == ("sleepy", "ok")

    def test_exhausted_retries_keep_last_escalated_timeout(self, monkeypatch):
        monkeypatch.setitem(ORDERING_ALGORITHMS, "sleepy",
                            lambda p: time.sleep(60))
        suite = run_suite(["POW9"], ("sleepy",), scale=SCALE,
                          timeout=0.2, retry_timeouts=2, timeout_growth=2.0)
        record = suite.records[0]
        assert record.status == "timeout"
        # time_s records the limit of the *last* attempt: 0.2 * 2 * 2
        assert record.time_s == pytest.approx(0.8)

    def test_retry_result_matches_unretried_clean_run(self, monkeypatch):
        """A cell that times out once and then succeeds produces the same
        canonical artifact as a run that never timed out at all."""
        self._sleepy_then_succeed(monkeypatch, 1.0)
        retried = run_suite(["POW9"], ("rcm", "sleepy"), scale=SCALE,
                            timeout=0.3, retry_timeouts=1, timeout_growth=10.0)
        clean = run_suite(["POW9"], ("rcm", "sleepy"), scale=SCALE,
                          timeout=30.0)
        assert retried.to_json(include_timing=False) == \
            clean.to_json(include_timing=False)

    def test_stream_resume_after_escalation_dedupes(self, monkeypatch, tmp_path):
        """The stream of an escalated run holds superseding records; reading
        it back and deduping yields one final record per cell."""
        from repro.batch import dedupe_records

        self._sleepy_then_succeed(monkeypatch, 1.0)
        path = tmp_path / "run.jsonl"
        header = stream_header(["POW9"], ["rcm", "sleepy"], scale=SCALE,
                               base_seed=0, shard=None, total_tasks=2)
        with StreamWriter(path, header) as writer:
            run_suite(["POW9"], ("rcm", "sleepy"), scale=SCALE,
                      timeout=0.3, retry_timeouts=1, timeout_growth=10.0,
                      on_record=lambda record, done, total:
                          writer.write_record(record))
        _header_read, raw = read_stream(path)
        assert len(raw) == 3  # rcm ok + sleepy timeout + sleepy ok
        deduped = dedupe_records(raw)
        assert [(r.algorithm, r.status) for r in deduped] == \
            [("rcm", "ok"), ("sleepy", "ok")]

    def test_no_retries_without_timeouts(self):
        executed = []
        suite = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE,
                          timeout=120.0, retry_timeouts=3,
                          on_record=lambda r, d, t: executed.append(r))
        assert len(executed) == 4  # nothing re-ran
        assert suite.failures == []


class TestBalancePinnedHeader:
    def test_old_header_without_balance_keys_still_validates(self):
        legacy = _header()
        del legacy["balance"], legacy["cost_fingerprint"]
        validate_stream_header(legacy, _header())  # no raise

    def test_balance_mismatch_rejected(self):
        with pytest.raises(ValueError, match="different shard plan"):
            validate_stream_header(_header(balance="cost"), _header())

    def test_cost_fingerprint_mismatch_rejected(self):
        mine = _header(balance="cost", cost_fingerprint="aaaa")
        theirs = _header(balance="cost", cost_fingerprint="bbbb")
        with pytest.raises(ValueError, match="cost model"):
            validate_stream_header(theirs, mine)
        validate_stream_header(mine, dict(mine))  # same plan: no raise

    def test_reused_timeout_record_is_never_retried(self):
        """run_suite's documented contract: completed records are reused
        verbatim whatever their status — escalation must not re-run them."""
        from repro.batch import TaskRecord

        stale = TaskRecord(problem="POW9", algorithm="rcm", status="timeout",
                           time_s=1.0,
                           error={"type": "TaskTimeout", "message": "limit",
                                  "traceback": None})
        executed = []
        suite = run_suite(["POW9"], ("rcm",), scale=SCALE,
                          completed=[stale], timeout=30.0, retry_timeouts=3,
                          on_record=lambda r, d, t: executed.append(r))
        assert suite.records == [stale]          # verbatim, still a timeout
        assert executed == [stale]               # replayed once, never re-run


class TestPartialRead:
    """The lossy ``--allow-partial`` read path: salvage complete records
    from a damaged stream, count exactly what was dropped."""

    def _write_stream(self, path, *, damage=()):
        suite = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
        with StreamWriter(path, _header()) as writer:
            for record in suite.records:
                writer.write_record(record)
        if damage:
            lines = path.read_text().splitlines()
            for index, replacement in damage:
                lines[index] = replacement
            path.write_text("\n".join(lines) + "\n")
        return suite

    def test_clean_stream_has_no_partial_marker(self, tmp_path):
        from repro.batch import suite_from_stream

        path = tmp_path / "run.jsonl"
        suite = self._write_stream(path)
        salvaged = suite_from_stream(path, allow_partial=True)
        assert salvaged.partial is None
        assert (salvaged.to_json(include_timing=False)
                == suite.to_json(include_timing=False))

    def test_mid_file_damage_salvaged_and_counted(self, tmp_path):
        from repro.batch import read_stream_partial, suite_from_stream

        path = tmp_path / "run.jsonl"
        self._write_stream(path, damage=[(2, "{torn json"),
                                         (3, '{"kind": "mystery"}')])
        with pytest.raises(ValueError, match="corrupt"):
            read_stream(path)                     # strict path still rejects
        header, records, dropped = read_stream_partial(path)
        assert header["kind"] == "header"
        assert len(records) == 2 and dropped == 2
        salvaged = suite_from_stream(path, allow_partial=True)
        assert salvaged.partial == {"dropped_lines": 2}

    def test_invalid_record_payload_counted_not_fatal(self, tmp_path):
        from repro.batch import read_stream_partial

        path = tmp_path / "run.jsonl"
        self._write_stream(path, damage=[(1, json.dumps({"kind": "record"}))])
        _header_read, records, dropped = read_stream_partial(path)
        assert len(records) == 3 and dropped == 1

    def test_headerless_stream_rejected_even_partial(self, tmp_path):
        from repro.batch import read_stream_partial

        path = tmp_path / "run.jsonl"
        self._write_stream(path, damage=[(0, "{torn header")])
        with pytest.raises(ValueError, match="header"):
            read_stream_partial(path)             # provenance is not optional

    def test_read_jsonl_objects_partial_counts_non_objects(self, tmp_path):
        from repro.batch import read_jsonl_objects_partial
        from repro.batch.stream import TruncatedStreamError

        path = tmp_path / "lines.jsonl"
        path.write_text('{"a": 1}\n[1, 2]\nnot json\n{"b": 2}\n{"c": 3')
        parsed, dropped = read_jsonl_objects_partial(path)
        assert parsed == [{"a": 1}, {"b": 2}]
        assert dropped == 3                       # array, garbage, torn tail

        path.write_text("{nothing complete")
        with pytest.raises(TruncatedStreamError):
            read_jsonl_objects_partial(path)
