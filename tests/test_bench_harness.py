"""The ``repro bench`` perf-regression harness: timing core, artifact
round-trip, regression diffing, and the CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    diff_bench,
    format_diff,
    load_bench,
    measure,
    pinned_micro_suite,
    run_bench,
    save_bench,
    time_call,
)
from repro.cli import main


# --------------------------------------------------------------------- #
# timing core
# --------------------------------------------------------------------- #
def test_time_call_returns_result_and_elapsed():
    result, seconds = time_call(lambda x: x * 2, 21)
    assert result == 42
    assert seconds >= 0.0


def test_measure_statistics():
    calls = []
    stats = measure(lambda: calls.append(1), repeats=3, warmup=2)
    assert len(calls) == 5  # warmup runs execute but are not timed
    assert stats["repeats"] == 3
    assert len(stats["times_s"]) == 3
    assert stats["best_s"] == min(stats["times_s"])
    assert stats["best_s"] <= stats["mean_s"]


def test_measure_rejects_nonpositive_repeats():
    with pytest.raises(ValueError):
        measure(lambda: None, repeats=0)


# --------------------------------------------------------------------- #
# harness + artifact
# --------------------------------------------------------------------- #
def test_pinned_micro_suite_names_are_stable_and_unique():
    for quick in (False, True):
        names = [bench.name for bench in pinned_micro_suite(quick)]
        assert len(names) == len(set(names))
        # group/algorithm/problem@scale — problem names may themselves
        # contain "/" (RANDOM/BA), so two slashes is the *minimum*
        assert all(name.count("/") >= 2 for name in names)
        assert all("@" in name for name in names)
    # quick mode is a subset-shaped suite, not a rename of the full one
    assert {b.group for b in pinned_micro_suite(True)} == {
        "orderings", "graph", "eigen", "powerlaw"}


def _tiny_artifact(tmp_path, name="bench.json", **overrides):
    """A real (but minimal) run: one filtered kernel, no suite section."""
    artifact = run_bench(quick=True, repeats=1, name_filter="mis", rev="test-rev")
    artifact.update(overrides)
    return save_bench(artifact, tmp_path / name), artifact


def test_run_bench_artifact_schema(tmp_path):
    path, artifact = _tiny_artifact(tmp_path)
    assert artifact["schema_version"] == BENCH_SCHEMA_VERSION
    assert artifact["rev"] == "test-rev"
    assert artifact["machine"]["numpy"]
    assert len(artifact["kernels"]) == 1
    (kernel,) = artifact["kernels"]
    assert kernel["name"] == "graph/mis/PWT@0.03"
    assert kernel["best_s"] >= 0.0
    assert artifact["suite"] is None  # filtered runs skip the suite section
    assert load_bench(path) == json.loads(path.read_text())


def test_load_bench_rejects_foreign_and_future_files(tmp_path):
    not_bench = tmp_path / "other.json"
    not_bench.write_text('{"schema_version": 1}')
    with pytest.raises(ValueError, match="not a repro bench artifact"):
        load_bench(not_bench)
    future = tmp_path / "future.json"
    future.write_text(json.dumps({"kind": "repro-bench",
                                  "schema_version": BENCH_SCHEMA_VERSION + 1}))
    with pytest.raises(ValueError, match="schema version"):
        load_bench(future)
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{nope")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_bench(garbage)


def _artifact_with(kernels, suite=None, rev="r"):
    return {"schema_version": 1, "kind": "repro-bench", "rev": rev,
            "machine": {}, "config": {}, "kernels": kernels, "suite": suite,
            "total_s": 0.0}


def test_diff_bench_speedups_and_regressions():
    baseline = _artifact_with(
        [{"name": "a", "best_s": 1.0}, {"name": "b", "best_s": 0.10},
         {"name": "gone", "best_s": 1.0}],
        suite={"cells": [{"problem": "P", "algorithm": "rcm",
                          "status": "ok", "time_s": 2.0}]},
        rev="old",
    )
    current = _artifact_with(
        [{"name": "a", "best_s": 0.25}, {"name": "b", "best_s": 0.20},
         {"name": "new", "best_s": 1.0}],
        suite={"cells": [{"problem": "P", "algorithm": "rcm",
                          "status": "ok", "time_s": 0.5}]},
        rev="new",
    )
    diff = diff_bench(baseline, current, threshold=0.25)
    by_name = {row["name"]: row for row in diff["rows"]}
    assert by_name["a"]["speedup"] == pytest.approx(4.0)
    assert by_name["suite/P/rcm"]["speedup"] == pytest.approx(4.0)
    assert by_name["b"]["regressed"] is True
    assert diff["regressions"] == ["b"]
    assert diff["added"] == ["new"]
    assert diff["removed"] == ["gone"]
    # geomean over (4, 0.5, 4): (4 * 0.5 * 4) ** (1/3) = 2.0
    assert diff["geomean_speedup"] == pytest.approx(2.0)
    # totals cover the kernel rows only (a + b), not the suite cells
    assert diff["total_base_s"] == pytest.approx(1.10)
    assert diff["total_new_s"] == pytest.approx(0.45)
    assert diff["total_speedup"] == pytest.approx(1.10 / 0.45)
    text = format_diff(diff)
    assert "REGRESSION" in text and "geometric-mean" in text
    assert "total micro-suite wall time" in text


def test_diff_bench_ignores_noise_floor_regressions():
    baseline = _artifact_with([{"name": "tiny", "best_s": 1e-5}])
    current = _artifact_with([{"name": "tiny", "best_s": 9e-5}])
    diff = diff_bench(baseline, current)
    assert diff["regressions"] == []


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def test_cli_bench_writes_artifact_and_diffs_clean(tmp_path, capsys):
    out = tmp_path / "BENCH_one.json"
    code = main(["bench", "--quick", "--filter", "graph/mis", "--repeats", "1",
                 "--output", str(out)])
    assert code == 0
    assert load_bench(out)["kernels"]
    # a self-diff has no regressions -> exit 0
    code = main(["bench", "--quick", "--filter", "graph/mis", "--repeats", "1",
                 "--output", str(tmp_path / "BENCH_two.json"),
                 "--against", str(out)])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "bench diff" in stdout and "no regressions" in stdout


def test_cli_bench_exits_nonzero_on_regression(tmp_path, monkeypatch):
    import repro.cli

    baseline = _artifact_with([{"name": "k", "best_s": 0.010}])
    path = tmp_path / "BENCH_base.json"
    path.write_text(json.dumps(baseline))
    regressed = _artifact_with([{"name": "k", "best_s": 0.100}], rev="slow")

    def fake_run_bench(**_kwargs):
        return regressed

    import repro.bench
    monkeypatch.setattr(repro.bench, "run_bench", fake_run_bench)
    code = repro.cli.main(["bench", "--output", str(tmp_path / "BENCH_now.json"),
                           "--against", str(path)])
    assert code == 1


def test_cli_bench_rejects_nonpositive_repeats(capsys):
    assert main(["bench", "--quick", "--repeats", "0"]) == 2
    assert "--repeats" in capsys.readouterr().err


def test_cli_bench_bad_baseline_exit_2(tmp_path):
    missing = main(["bench", "--quick", "--filter", "graph/mis",
                    "--against", str(tmp_path / "nope.json")])
    assert missing == 2
    invalid = tmp_path / "invalid.json"
    invalid.write_text("{}")
    assert main(["bench", "--quick", "--filter", "graph/mis",
                 "--against", str(invalid)]) == 2


def test_suite_cells_carry_n_nnz_and_export_cost_model(tmp_path, capsys):
    """Bench suite cells record n/nnz so --export-cost-model can fit
    per-algorithm cost rates; the exported model loads as a CostModel."""
    from repro.batch import CostModel

    out = tmp_path / "BENCH_x.json"
    costs = tmp_path / "costs.json"
    code = main(["bench", "--quick", "--repeats", "1", "--no-suite",
                 "--filter", "orderings/rcm", "--output", str(out),
                 "--export-cost-model", str(costs)])
    assert code == 0
    assert "cost model" in capsys.readouterr().out
    artifact = json.loads(out.read_text())
    model = CostModel.from_file(costs)
    assert len(model) == len(artifact["kernels"]) > 0
    # artifacts with a suite section expose n/nnz per cell
    from repro.bench import run_bench

    quick = run_bench(quick=True, repeats=1, include_suite=True)
    cells = quick["suite"]["cells"]
    assert cells and all(cell["n"] > 0 and cell["nnz"] > 0 for cell in cells
                         if cell["status"] == "ok")
    direct = CostModel()
    direct.observe_bench(quick)
    assert len(direct) >= len(cells)


# --------------------------------------------------------------------- #
# suite cells: best-of-k timing + sizes (cost-model food)
# --------------------------------------------------------------------- #
def test_suite_cells_record_best_of_k_timing():
    artifact = run_bench(quick=True, repeats=2, include_suite=True)
    suite = artifact["suite"]
    assert suite["repeats"] == 2
    for cell in suite["cells"]:
        if cell["status"] != "ok":
            continue
        assert cell["best_s"] is not None and cell["best_s"] > 0
        # best-of-k is no worse than the last run's engine timing
        assert cell["best_s"] <= cell["time_s"] + 1e-12
        assert cell["n"] > 0 and cell["nnz"] > 0


def test_diff_and_cost_model_prefer_best_s_cells():
    from repro.batch import CostModel

    baseline = _artifact_with(
        [], suite={"scale": 0.02,
                   "cells": [{"problem": "P", "algorithm": "rcm", "status": "ok",
                              "time_s": 9.0, "best_s": 2.0, "n": 10, "nnz": 20}]})
    current = _artifact_with(
        [], suite={"scale": 0.02,
                   "cells": [{"problem": "P", "algorithm": "rcm", "status": "ok",
                              "time_s": 5.0, "best_s": 1.0, "n": 10, "nnz": 20}]})
    diff = diff_bench(baseline, current)
    (row,) = diff["rows"]
    assert row["base_s"] == 2.0 and row["new_s"] == 1.0  # best_s, not time_s
    model = CostModel()
    model.observe_bench(current)
    assert model.estimate("P", "rcm", 0.02) == 1.0
    # read-compat: artifacts without best_s still feed time_s
    legacy = _artifact_with(
        [], suite={"scale": 0.02,
                   "cells": [{"problem": "P", "algorithm": "rcm", "status": "ok",
                              "time_s": 5.0}]})
    legacy_model = CostModel()
    legacy_model.observe_bench(legacy)
    assert legacy_model.estimate("P", "rcm", 0.02) == 5.0


# --------------------------------------------------------------------- #
# the geomean CI gate
# --------------------------------------------------------------------- #
def test_gate_geomean_tolerates_single_kernel_spikes(tmp_path, monkeypatch):
    """One kernel regressing hard fails --gate kernel but not --gate geomean
    (the CI smoke configuration), as long as the geomean stays inside the
    threshold; a broad slowdown fails both."""
    import repro.bench
    import repro.cli

    baseline = _artifact_with([{"name": f"k{i}", "best_s": 0.010}
                               for i in range(12)])
    base_path = tmp_path / "BENCH_base.json"
    base_path.write_text(json.dumps(baseline))
    spike = _artifact_with(
        [{"name": "k0", "best_s": 0.100}]
        + [{"name": f"k{i}", "best_s": 0.010} for i in range(1, 12)], rev="s")

    monkeypatch.setattr(repro.bench, "run_bench", lambda **_: spike)
    args = ["bench", "--output", str(tmp_path / "BENCH_now.json"),
            "--against", str(base_path)]
    assert repro.cli.main(args) == 1                       # per-kernel gate
    assert repro.cli.main(args + ["--gate", "geomean"]) == 0

    broad = _artifact_with([{"name": f"k{i}", "best_s": 0.020}
                            for i in range(12)], rev="b")
    monkeypatch.setattr(repro.bench, "run_bench", lambda **_: broad)
    assert repro.cli.main(args + ["--gate", "geomean"]) == 1


def test_gate_geomean_ignores_sub_noise_floor_rows(tmp_path, monkeypatch):
    import repro.bench
    import repro.cli

    baseline = _artifact_with(
        [{"name": "tiny", "best_s": 1e-5}, {"name": "real", "best_s": 0.010}])
    base_path = tmp_path / "BENCH_base.json"
    base_path.write_text(json.dumps(baseline))
    # the sub-floor kernel "regresses" 100x; the real kernel is unchanged
    current = _artifact_with(
        [{"name": "tiny", "best_s": 1e-3}, {"name": "real", "best_s": 0.010}],
        rev="n")
    monkeypatch.setattr(repro.bench, "run_bench", lambda **_: current)
    code = repro.cli.main(["bench", "--output", str(tmp_path / "BENCH_now.json"),
                           "--against", str(base_path), "--gate", "geomean"])
    assert code == 0


def test_fiedler_policy_recorded_and_mismatch_flagged():
    fast = run_bench(quick=True, repeats=1, name_filter="graph/mis",
                     fiedler_policy="fast", rev="f")
    assert fast["config"]["fiedler_policy"] == "fast"
    default = run_bench(quick=True, repeats=1, name_filter="graph/mis", rev="d")
    diff = diff_bench(default, fast)
    assert diff["fiedler_policies"] == ("default", "fast")
    assert "not like-for-like" in format_diff(diff)


def test_run_bench_rejects_unknown_policy():
    with pytest.raises(ValueError, match="fiedler_policy"):
        run_bench(quick=True, repeats=1, fiedler_policy="warp")
