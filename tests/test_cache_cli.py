"""``repro cache`` and the ``--store`` plumbing on suite/bench.

The flagship contract: running the same suite twice against one cache dir
produces byte-identical canonical artifacts, with the second pass reporting
a nonzero hit count — the same check CI runs.
"""

from __future__ import annotations

import json

import pytest

from repro.batch import SuiteResult
from repro.batch.engine import clear_problem_cache
from repro.cli import main
from repro.store import ArtifactStore, reset_default_store


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    reset_default_store()
    clear_problem_cache()
    yield
    reset_default_store()
    clear_problem_cache()


def _run_suite(tmp_path, out_name, store=None):
    args = ["suite", "POW9", "--algorithms", "spectral,rcm", "--scale", "0.05",
            "--jobs", "1", "--no-progress",
            "--output", str(tmp_path / out_name)]
    if store is not None:
        args += ["--store", str(store)]
    return main(args)


class TestSuiteWithStore:
    def test_second_pass_hits_and_byte_identical(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert _run_suite(tmp_path, "cold.json") == 0
        cold_err = capsys.readouterr().err
        assert "store" not in cold_err  # no stats line without a store

        clear_problem_cache()
        reset_default_store()
        assert _run_suite(tmp_path, "first.json", store=cache) == 0
        first_out = capsys.readouterr().out
        assert "0 hit(s)" in first_out

        clear_problem_cache()
        reset_default_store()
        assert _run_suite(tmp_path, "second.json", store=cache) == 0
        second_out = capsys.readouterr().out
        stats = [line for line in second_out.splitlines() if line.startswith("store ")]
        assert stats, second_out
        hits = int(stats[0].split(":")[1].split("hit")[0].strip())
        assert hits > 0

        canonical = [
            SuiteResult.load(tmp_path / name).to_json(include_timing=False)
            for name in ("cold.json", "first.json", "second.json")
        ]
        assert canonical[0] == canonical[1] == canonical[2]

    def test_store_flag_reaches_workers_via_env(self, tmp_path, monkeypatch):
        import os

        cache = tmp_path / "cache"
        assert _run_suite(tmp_path, "out.json", store=cache) == 0
        # --store is exported so spawned suite workers inherit the same dir
        assert os.environ.get("REPRO_STORE") == str(cache)


class TestCacheCommand:
    def _populate(self, tmp_path):
        cache = tmp_path / "cache"
        assert _run_suite(tmp_path, "seed.json", store=cache) == 0
        return cache

    def test_requires_a_store(self, capsys):
        code = main(["cache", "info"])
        assert code == 2
        assert "no store configured" in capsys.readouterr().err

    def test_env_var_configures_the_store(self, tmp_path, monkeypatch, capsys):
        cache = self._populate(tmp_path)
        capsys.readouterr()
        monkeypatch.setenv("REPRO_STORE", str(cache))
        reset_default_store()
        assert main(["cache", "info"]) == 0
        assert "entries" in capsys.readouterr().out

    def test_ls_lists_entries(self, tmp_path, capsys):
        cache = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "ls", "--store", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "KIND" in out
        for kind in ("pattern", "laplacian", "components", "fiedler"):
            assert kind in out

    def test_info_json_is_machine_readable(self, tmp_path, capsys):
        cache = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "info", "--json", "--store", str(cache)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["entries"] > 0
        assert info["bytes"] > 0
        assert "fiedler" in info["kinds"]

    def test_prewarm_then_suite_hits(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        code = main(["cache", "prewarm", "POW9", "--scale", "0.05",
                     "--store", str(cache)])
        assert code == 0
        out = capsys.readouterr().out
        assert "POW9" in out
        store = ArtifactStore(cache)
        kinds = {row["kind"] for row in store.entries()}
        assert {"pattern", "laplacian", "components"} <= kinds

        reset_default_store()
        clear_problem_cache()
        assert _run_suite(tmp_path, "out.json", store=cache) == 0
        suite_out = capsys.readouterr().out
        stats = [line for line in suite_out.splitlines() if line.startswith("store ")]
        hits = int(stats[0].split(":")[1].split("hit")[0].strip())
        assert hits > 0

    def test_prewarm_unknown_problem_fails(self, tmp_path, capsys):
        code = main(["cache", "prewarm", "NOSUCH", "--store", str(tmp_path / "c")])
        assert code == 1
        captured = capsys.readouterr()
        assert "NOSUCH" in captured.out + captured.err

    def test_clear_empties_the_store(self, tmp_path, capsys):
        cache = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "clear", "--store", str(cache)]) == 0
        assert "cleared" in capsys.readouterr().out
        assert ArtifactStore(cache).entries() == []
        # idempotent
        assert main(["cache", "clear", "--store", str(cache)]) == 0


class TestBenchWithStore:
    def test_bench_accepts_store_and_reports_stats(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        code = main(["bench", "--quick", "--filter", "fiedler",
                     "--no-suite", "--repeats", "1",
                     "--store", str(cache),
                     "--output", str(tmp_path / "bench.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert any(line.startswith("store ") for line in out.splitlines())
        assert (tmp_path / "bench.json").exists()
