"""Unit tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cli import build_parser, main
from repro.collections.meshes import grid2d_pattern
from repro.sparse.io_mm import read_matrix_market, write_matrix_market


@pytest.fixture
def matrix_file(tmp_path):
    pattern = grid2d_pattern(8, 7)
    path = tmp_path / "grid.mtx"
    write_matrix_market(path, pattern.to_scipy("spd"))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reorder_defaults(self):
        args = build_parser().parse_args(["reorder", "problem:POW9@0.02"])
        assert args.algorithm == "spectral"
        assert args.command == "reorder"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reorder", "x.mtx", "--algorithm", "amd"])


class TestReorderCommand:
    def test_reorder_file_and_write_outputs(self, matrix_file, tmp_path, capsys):
        perm_path = tmp_path / "perm.txt"
        out_path = tmp_path / "reordered.mtx"
        code = main(
            [
                "reorder",
                matrix_file,
                "--algorithm",
                "rcm",
                "--output-permutation",
                str(perm_path),
                "--output-matrix",
                str(out_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "envelope size" in output
        perm = np.loadtxt(perm_path, dtype=int)
        assert sorted(perm.tolist()) == list(range(56))
        reordered = read_matrix_market(out_path)
        original = read_matrix_market(matrix_file)
        np.testing.assert_allclose(
            reordered.toarray(), original.toarray()[np.ix_(perm, perm)], atol=1e-12
        )

    def test_reorder_surrogate_problem(self, capsys):
        code = main(["reorder", "problem:POW9@0.02", "--algorithm", "spectral", "--method", "dense"])
        assert code == 0
        assert "POW9" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_default_algorithms(self, matrix_file, capsys):
        code = main(["compare", matrix_file])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("SPECTRAL", "GK", "GPS", "RCM"):
            assert name in output
        assert "Smallest envelope" in output

    def test_compare_custom_algorithms(self, matrix_file, capsys):
        code = main(["compare", matrix_file, "--algorithms", "rcm,sloan"])
        assert code == 0
        output = capsys.readouterr().out
        assert "SLOAN" in output and "SPECTRAL" not in output

    def test_compare_unknown_algorithm_errors(self, matrix_file, capsys):
        code = main(["compare", matrix_file, "--algorithms", "rcm,amd"])
        assert code == 2
        assert "unknown algorithms" in capsys.readouterr().err


class TestSpyCommand:
    def test_spy_original(self, matrix_file, capsys):
        code = main(["spy", matrix_file, "--resolution", "12"])
        assert code == 0
        output = capsys.readouterr().out
        assert "ORIGINAL" in output
        assert "envelope=" in output

    def test_spy_with_algorithm(self, matrix_file, capsys):
        code = main(["spy", matrix_file, "--algorithm", "rcm", "--resolution", "10"])
        assert code == 0
        assert "RCM" in capsys.readouterr().out


class TestFiedlerCommand:
    def test_fiedler_on_file(self, matrix_file, tmp_path, capsys):
        vec_path = tmp_path / "fiedler.txt"
        code = main(["fiedler", matrix_file, "--method", "dense", "--output-vector", str(vec_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "algebraic connectivity" in output
        vector = np.loadtxt(vec_path)
        assert vector.shape == (56,)
        assert abs(vector.sum()) < 1e-8


class TestSuiteCommand:
    ARGS = ["suite", "POW9", "CAN1072", "--algorithms", "rcm,gps", "--scale", "0.02"]

    def test_suite_prints_table_and_summary(self, capsys):
        code = main(self.ARGS)
        assert code == 0
        output = capsys.readouterr().out
        assert "POW9" in output and "CAN1072" in output
        assert "RCM" in output and "GPS" in output
        assert "4 ok, 0 failed" in output

    def test_suite_writes_versioned_json(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = main(self.ARGS + ["--jobs", "2", "--output", str(out)])
        assert code == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["schema_version"] == 1
        assert payload["n_jobs"] == 2
        assert len(payload["records"]) == 4
        assert all(r["status"] == "ok" for r in payload["records"])

    def test_suite_baseline_match_and_drift(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        assert main(self.ARGS + ["--output", str(out)]) == 0
        assert main(self.ARGS + ["--baseline", str(out)]) == 0
        assert "matches baseline" in capsys.readouterr().out

        import json

        payload = json.loads(out.read_text())
        payload["records"][0]["metrics"]["envelope_size"] += 1
        out.write_text(json.dumps(payload))
        assert main(self.ARGS + ["--baseline", str(out)]) == 1
        assert "envelope_size" in capsys.readouterr().err

    def test_suite_table_selection(self, capsys):
        code = main(["suite", "--table", "4.2", "--algorithms", "rcm", "--scale", "0.02"])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("BLKHOLE", "CAN1072", "DWT2680", "POW9", "SSTMODEL"):
            assert name in output

    def test_suite_unknown_algorithm_errors(self, capsys):
        code = main(["suite", "POW9", "--algorithms", "rcm,amd", "--scale", "0.02"])
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_suite_unknown_problem_errors(self, capsys):
        code = main(["suite", "NOSUCH", "--scale", "0.02"])
        assert code == 2
        assert "unknown problem" in capsys.readouterr().err


class TestProblemsCommand:
    def test_lists_all_tables(self, capsys):
        code = main(["problems"])
        assert code == 0
        output = capsys.readouterr().out
        assert "BARTH4" in output and "BCSSTK29" in output and "POW9" in output
