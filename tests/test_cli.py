"""Unit tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cli import build_parser, main
from repro.collections.meshes import grid2d_pattern
from repro.sparse.io_mm import read_matrix_market, write_matrix_market


@pytest.fixture
def matrix_file(tmp_path):
    pattern = grid2d_pattern(8, 7)
    path = tmp_path / "grid.mtx"
    write_matrix_market(path, pattern.to_scipy("spd"))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reorder_defaults(self):
        args = build_parser().parse_args(["reorder", "problem:POW9@0.02"])
        assert args.algorithm == "spectral"
        assert args.command == "reorder"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reorder", "x.mtx", "--algorithm", "amd"])


class TestReorderCommand:
    def test_reorder_file_and_write_outputs(self, matrix_file, tmp_path, capsys):
        perm_path = tmp_path / "perm.txt"
        out_path = tmp_path / "reordered.mtx"
        code = main(
            [
                "reorder",
                matrix_file,
                "--algorithm",
                "rcm",
                "--output-permutation",
                str(perm_path),
                "--output-matrix",
                str(out_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "envelope size" in output
        perm = np.loadtxt(perm_path, dtype=int)
        assert sorted(perm.tolist()) == list(range(56))
        reordered = read_matrix_market(out_path)
        original = read_matrix_market(matrix_file)
        np.testing.assert_allclose(
            reordered.toarray(), original.toarray()[np.ix_(perm, perm)], atol=1e-12
        )

    def test_reorder_surrogate_problem(self, capsys):
        code = main(["reorder", "problem:POW9@0.02", "--algorithm", "spectral", "--method", "dense"])
        assert code == 0
        assert "POW9" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_default_algorithms(self, matrix_file, capsys):
        code = main(["compare", matrix_file])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("SPECTRAL", "GK", "GPS", "RCM"):
            assert name in output
        assert "Smallest envelope" in output

    def test_compare_custom_algorithms(self, matrix_file, capsys):
        code = main(["compare", matrix_file, "--algorithms", "rcm,sloan"])
        assert code == 0
        output = capsys.readouterr().out
        assert "SLOAN" in output and "SPECTRAL" not in output

    def test_compare_unknown_algorithm_errors(self, matrix_file, capsys):
        code = main(["compare", matrix_file, "--algorithms", "rcm,amd"])
        assert code == 2
        assert "unknown algorithms" in capsys.readouterr().err


class TestSpyCommand:
    def test_spy_original(self, matrix_file, capsys):
        code = main(["spy", matrix_file, "--resolution", "12"])
        assert code == 0
        output = capsys.readouterr().out
        assert "ORIGINAL" in output
        assert "envelope=" in output

    def test_spy_with_algorithm(self, matrix_file, capsys):
        code = main(["spy", matrix_file, "--algorithm", "rcm", "--resolution", "10"])
        assert code == 0
        assert "RCM" in capsys.readouterr().out


class TestFiedlerCommand:
    def test_fiedler_on_file(self, matrix_file, tmp_path, capsys):
        vec_path = tmp_path / "fiedler.txt"
        code = main(["fiedler", matrix_file, "--method", "dense", "--output-vector", str(vec_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "algebraic connectivity" in output
        vector = np.loadtxt(vec_path)
        assert vector.shape == (56,)
        assert abs(vector.sum()) < 1e-8


class TestSuiteCommand:
    ARGS = ["suite", "POW9", "CAN1072", "--algorithms", "rcm,gps", "--scale", "0.02"]

    def test_suite_prints_table_and_summary(self, capsys):
        code = main(self.ARGS)
        assert code == 0
        output = capsys.readouterr().out
        assert "POW9" in output and "CAN1072" in output
        assert "RCM" in output and "GPS" in output
        assert "4 ok, 0 failed" in output

    def test_suite_writes_versioned_json(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = main(self.ARGS + ["--jobs", "2", "--output", str(out)])
        assert code == 0
        import json

        from repro.batch import SCHEMA_VERSION

        payload = json.loads(out.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["n_jobs"] == 2
        assert len(payload["records"]) == 4
        assert all(r["status"] == "ok" for r in payload["records"])

    def test_suite_baseline_match_and_drift(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        assert main(self.ARGS + ["--output", str(out)]) == 0
        assert main(self.ARGS + ["--baseline", str(out)]) == 0
        assert "matches baseline" in capsys.readouterr().out

        import json

        payload = json.loads(out.read_text())
        payload["records"][0]["metrics"]["envelope_size"] += 1
        out.write_text(json.dumps(payload))
        assert main(self.ARGS + ["--baseline", str(out)]) == 1
        assert "envelope_size" in capsys.readouterr().err

    def test_suite_table_selection(self, capsys):
        code = main(["suite", "--table", "4.2", "--algorithms", "rcm", "--scale", "0.02"])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("BLKHOLE", "CAN1072", "DWT2680", "POW9", "SSTMODEL"):
            assert name in output

    def test_suite_unknown_algorithm_errors(self, capsys):
        code = main(["suite", "POW9", "--algorithms", "rcm,amd", "--scale", "0.02"])
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_suite_unknown_problem_errors(self, capsys):
        code = main(["suite", "NOSUCH", "--scale", "0.02"])
        assert code == 2
        assert "unknown problem" in capsys.readouterr().err

    def test_suite_baseline_unreadable_vs_schema_mismatch_messages(self, tmp_path, capsys):
        """The two --baseline failure modes must be distinguishable (both exit 2)."""
        code = main(self.ARGS + ["--baseline", str(tmp_path / "nosuch.json")])
        assert code == 2
        assert "cannot read baseline file" in capsys.readouterr().err

        import json

        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"schema_version": 999, "records": []}))
        code = main(self.ARGS + ["--baseline", str(stale)])
        assert code == 2
        err = capsys.readouterr().err
        assert "results-schema mismatch" in err and "cannot read" not in err

        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json at all")
        code = main(self.ARGS + ["--baseline", str(garbage)])
        assert code == 2
        assert "not a valid results artifact" in capsys.readouterr().err


class TestSuiteShardingCli:
    ARGS = ["suite", "POW9", "CAN1072", "--algorithms", "rcm,gps", "--scale", "0.02"]

    def test_shard_runs_slice_and_records_shard(self, tmp_path, capsys):
        import json

        out = tmp_path / "shard1.json"
        code = main(self.ARGS + ["--shard", "1/2", "--output", str(out)])
        assert code == 0
        assert "(shard 1/2)" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["shard"] == [1, 2]
        assert len(payload["records"]) == 2

    def test_invalid_shard_spec_errors(self, capsys):
        assert main(self.ARGS + ["--shard", "5/2"]) == 2
        assert "shard index" in capsys.readouterr().err
        assert main(self.ARGS + ["--shard", "abc"]) == 2
        assert "invalid shard specification" in capsys.readouterr().err

    def test_merge_recombines_shards_byte_identically(self, tmp_path, capsys):
        from repro.batch import SuiteResult

        paths = []
        for k in (1, 2):
            path = tmp_path / f"shard{k}.json"
            assert main(self.ARGS + ["--shard", f"{k}/2", "--output", str(path)]) == 0
            paths.append(str(path))
        full_path = tmp_path / "full.json"
        assert main(self.ARGS + ["--output", str(full_path)]) == 0
        merged_path = tmp_path / "merged.json"
        code = main(["merge", *paths, "--output", str(merged_path)])
        assert code == 0
        assert "merged 4 record(s) from 2 artifact(s)" in capsys.readouterr().out
        merged = SuiteResult.load(merged_path)
        full = SuiteResult.load(full_path)
        assert merged.to_json(include_timing=False) == full.to_json(include_timing=False)

    def test_merge_canonical_writes_timing_free_artifact(self, tmp_path):
        import json

        path = tmp_path / "full.json"
        assert main(self.ARGS + ["--output", str(path)]) == 0
        merged_path = tmp_path / "merged.json"
        assert main(["merge", str(path), "--output", str(merged_path), "--canonical"]) == 0
        payload = json.loads(merged_path.read_text())
        assert "wall_time_s" not in payload and "n_jobs" not in payload

    def test_merge_incomplete_shard_set_errors(self, tmp_path, capsys):
        path = tmp_path / "shard1.json"
        assert main(self.ARGS + ["--shard", "1/2", "--output", str(path)]) == 0
        code = main(["merge", str(path), "--output", str(tmp_path / "merged.json")])
        assert code == 2
        assert "incomplete shard set" in capsys.readouterr().err

    def test_merge_unreadable_input_errors(self, tmp_path, capsys):
        code = main(["merge", str(tmp_path / "nosuch.json"),
                     "--output", str(tmp_path / "merged.json")])
        assert code == 2
        assert "cannot read shard artifact file" in capsys.readouterr().err


class TestSuiteStreamingCli:
    ARGS = ["suite", "POW9", "CAN1072", "--algorithms", "rcm,gps", "--scale", "0.02"]

    def test_stream_output_writes_header_and_records(self, tmp_path):
        import json

        stream = tmp_path / "run.jsonl"
        code = main(self.ARGS + ["--stream-output", str(stream)])
        assert code == 0
        lines = [json.loads(line) for line in stream.read_text().splitlines()]
        assert lines[0]["kind"] == "header" and lines[0]["total_tasks"] == 4
        assert [line["kind"] for line in lines[1:]] == ["record"] * 4

    def test_progress_lines_on_stderr(self, capsys):
        code = main(self.ARGS + ["--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "[1/4]" in err and "[4/4]" in err

    def test_resume_after_kill_round_trip(self, tmp_path, capsys):
        from repro.batch import SuiteResult

        full_path = tmp_path / "full.json"
        assert main(self.ARGS + ["--output", str(full_path)]) == 0
        stream = tmp_path / "run.jsonl"
        assert main(self.ARGS + ["--stream-output", str(stream)]) == 0
        stream.write_bytes(stream.read_bytes()[:-25])  # the kill
        capsys.readouterr()

        resumed_path = tmp_path / "resumed.json"
        code = main(self.ARGS + ["--resume", str(stream), "--stream-output", str(stream),
                                 "--output", str(resumed_path)])
        assert code == 0
        assert "reused from" in capsys.readouterr().out
        resumed = SuiteResult.load(resumed_path)
        full = SuiteResult.load(full_path)
        assert resumed.to_json(include_timing=False) == full.to_json(include_timing=False)
        # the stream file is now complete again: header + all four records
        import json

        lines = [json.loads(line) for line in stream.read_text().splitlines()]
        assert len(lines) == 5

    def test_resume_spec_mismatch_errors(self, tmp_path, capsys):
        stream = tmp_path / "run.jsonl"
        assert main(self.ARGS + ["--stream-output", str(stream)]) == 0
        capsys.readouterr()
        code = main(["suite", "POW9", "--algorithms", "rcm", "--scale", "0.02",
                     "--resume", str(stream)])
        assert code == 2
        assert "different suite" in capsys.readouterr().err

    def test_resume_missing_file_errors_unless_it_is_the_sink(self, tmp_path, capsys):
        missing = tmp_path / "nosuch.jsonl"
        code = main(self.ARGS + ["--resume", str(missing)])
        assert code == 2
        assert "cannot read resume file" in capsys.readouterr().err
        # ... but resuming from the sink that does not exist yet starts fresh
        code = main(self.ARGS + ["--resume", str(missing), "--stream-output", str(missing)])
        assert code == 0
        assert "starting fresh" in capsys.readouterr().err

    def test_timeout_records_timeout_without_stalling(self, monkeypatch, capsys):
        import time

        from repro.orderings.registry import ORDERING_ALGORITHMS

        monkeypatch.setitem(ORDERING_ALGORITHMS, "sleepy", lambda p: time.sleep(60))
        start = time.monotonic()
        code = main(["suite", "POW9", "--algorithms", "rcm,sleepy", "--scale", "0.02",
                     "--timeout", "1"])
        assert time.monotonic() - start < 30
        assert code == 1  # a timeout is a failure exit, like an error record
        out = capsys.readouterr().out
        assert "TIMEOUT POW9/sleepy" in out
        assert "1 timed out" in out

    def test_invalid_timeout_errors(self, capsys):
        code = main(self.ARGS + ["--timeout", "0"])
        assert code == 2
        assert "timeout" in capsys.readouterr().err

    def test_resume_retries_timed_out_cells(self, tmp_path, monkeypatch, capsys):
        """A timeout record in the stream is a machine artifact: resuming
        (e.g. with a larger --timeout) recomputes that cell."""
        import time

        from repro.orderings.registry import ORDERING_ALGORITHMS

        monkeypatch.setitem(ORDERING_ALGORITHMS, "sleepy",
                            lambda p: time.sleep(2) or ORDERING_ALGORITHMS["rcm"](p))
        stream = tmp_path / "run.jsonl"
        args = ["suite", "POW9", "--algorithms", "rcm,sleepy", "--scale", "0.02"]
        assert main(args + ["--timeout", "0.5", "--stream-output", str(stream)]) == 1
        capsys.readouterr()
        code = main(args + ["--timeout", "30", "--resume", str(stream),
                            "--stream-output", str(stream)])
        assert code == 0
        captured = capsys.readouterr()
        assert "retrying 1 timed-out cell(s)" in captured.err
        assert "1 reused from" in captured.out

    def test_baseline_non_object_json_gets_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "array.json"
        bad.write_text("[1, 2]")
        code = main(self.ARGS + ["--baseline", str(bad)])
        assert code == 2
        assert "not a valid results artifact" in capsys.readouterr().err


class TestProblemsCommand:
    def test_lists_all_tables(self, capsys):
        code = main(["problems"])
        assert code == 0
        output = capsys.readouterr().out
        assert "BARTH4" in output and "BCSSTK29" in output and "POW9" in output


class TestCostBalanceCli:
    ARGS = ["suite", "POW9", "CAN1072", "--algorithms", "rcm,gps", "--scale", "0.02"]

    def test_cost_balanced_shards_merge_byte_identically(self, tmp_path, capsys):
        from repro.batch import SuiteResult

        full_path = tmp_path / "full.json"
        assert main(self.ARGS + ["--output", str(full_path)]) == 0
        paths = []
        for k in (1, 2):
            path = tmp_path / f"shard{k}.json"
            code = main(self.ARGS + ["--shard", f"{k}/2", "--balance", "cost",
                                     "--cost-model", str(full_path),
                                     "--output", str(path)])
            assert code == 0
            err = capsys.readouterr().err
            assert "cost balance" in err and "estimated makespan" in err
            paths.append(str(path))
        merged_path = tmp_path / "merged.json"
        assert main(["merge", *paths, "--output", str(merged_path)]) == 0
        merged = SuiteResult.load(merged_path)
        full = SuiteResult.load(full_path)
        assert merged.to_json(include_timing=False) == full.to_json(include_timing=False)

    def test_balance_cost_without_model_uses_fallback(self, tmp_path, capsys):
        code = main(self.ARGS + ["--shard", "1/2", "--balance", "cost",
                                 "--output", str(tmp_path / "s1.json")])
        assert code == 0
        assert "0 observation(s)" in capsys.readouterr().err

    def test_unreadable_cost_model_errors(self, tmp_path, capsys):
        code = main(self.ARGS + ["--cost-model", str(tmp_path / "nosuch.json")])
        assert code == 2
        assert "cannot read cost-model file" in capsys.readouterr().err

    def test_invalid_cost_model_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json\nnot a stream\n")
        code = main(self.ARGS + ["--cost-model", str(bad)])
        assert code == 2
        assert "cost model" in capsys.readouterr().err

    def test_cost_model_alone_orders_dispatch_without_changing_results(self, tmp_path):
        from repro.batch import SuiteResult

        full_path = tmp_path / "full.json"
        assert main(self.ARGS + ["--output", str(full_path)]) == 0
        dispatched_path = tmp_path / "dispatched.json"
        assert main(self.ARGS + ["--cost-model", str(full_path),
                                 "--output", str(dispatched_path)]) == 0
        full = SuiteResult.load(full_path)
        dispatched = SuiteResult.load(dispatched_path)
        assert dispatched.to_json(include_timing=False) == full.to_json(include_timing=False)


class TestRetryTimeoutsCli:
    def test_retry_without_timeout_errors(self, capsys):
        code = main(["suite", "POW9", "--algorithms", "rcm", "--scale", "0.02",
                     "--retry-timeouts", "1"])
        assert code == 2
        assert "--retry-timeouts needs --timeout" in capsys.readouterr().err

    def test_forced_timeout_retried_lands_single_ok_record(self, tmp_path,
                                                           monkeypatch, capsys):
        """The acceptance criterion end to end: a cell that times out on the
        first attempt and is retried with --retry-timeouts 1 lands exactly
        one final 'ok' record in the merged output — both in the JSON
        artifact and through a merge of the superseded JSONL stream."""
        import json
        import time

        from repro.batch import SuiteResult
        from repro.orderings.registry import ORDERING_ALGORITHMS

        monkeypatch.setitem(ORDERING_ALGORITHMS, "sleepy",
                            lambda p: time.sleep(1.0) or ORDERING_ALGORITHMS["rcm"](p))
        stream = tmp_path / "run.jsonl"
        out = tmp_path / "out.json"
        code = main(["suite", "POW9", "--algorithms", "rcm,sleepy",
                     "--scale", "0.02", "--timeout", "0.3",
                     "--retry-timeouts", "1", "--timeout-growth", "10",
                     "--stream-output", str(stream), "--output", str(out),
                     "--no-progress"])
        assert code == 0  # the retry rescued the run: no failures left
        assert "2 ok, 0 failed" in capsys.readouterr().out

        # the artifact holds exactly one record for the retried cell, ok
        suite = SuiteResult.load(out)
        sleepy = [r for r in suite.records if r.algorithm == "sleepy"]
        assert len(sleepy) == 1 and sleepy[0].status == "ok"

        # the stream kept both attempts (supersede semantics) ...
        lines = [json.loads(line) for line in stream.read_text().splitlines()]
        sleepy_lines = [l for l in lines if l.get("algorithm") == "sleepy"]
        assert [l["status"] for l in sleepy_lines] == ["timeout", "ok"]

        # ... and merging the stream dedupes to the final ok attempt
        merged_path = tmp_path / "merged.json"
        assert main(["merge", str(stream), "--output", str(merged_path)]) == 0
        merged = SuiteResult.load(merged_path)
        final = [r for r in merged.records if r.algorithm == "sleepy"]
        assert len(final) == 1 and final[0].status == "ok"

    def test_resume_of_escalated_stream_reuses_final_attempts(self, tmp_path,
                                                              monkeypatch, capsys):
        """--resume on a stream with superseded records dedupes before
        deciding what to re-run: the rescued cell is reused, not retried."""
        import time

        from repro.orderings.registry import ORDERING_ALGORITHMS

        monkeypatch.setitem(ORDERING_ALGORITHMS, "sleepy",
                            lambda p: time.sleep(1.0) or ORDERING_ALGORITHMS["rcm"](p))
        stream = tmp_path / "run.jsonl"
        args = ["suite", "POW9", "--algorithms", "rcm,sleepy", "--scale", "0.02",
                "--timeout", "0.3", "--retry-timeouts", "1",
                "--timeout-growth", "10", "--stream-output", str(stream),
                "--no-progress"]
        assert main(args) == 0
        capsys.readouterr()
        code = main(args + ["--resume", str(stream)])
        assert code == 0
        captured = capsys.readouterr()
        assert "2 reused from" in captured.out
        assert "retrying" not in captured.err


class TestCostBalancedResumeGuard:
    ARGS = ["suite", "POW9", "CAN1072", "--algorithms", "rcm,gps",
            "--scale", "0.02", "--no-progress"]

    def test_resume_with_different_cost_model_rejected(self, tmp_path, capsys):
        full = tmp_path / "full.json"
        assert main(self.ARGS + ["--output", str(full)]) == 0
        stream = tmp_path / "s1.jsonl"
        balanced = self.ARGS + ["--shard", "1/2", "--balance", "cost",
                                "--cost-model", str(full),
                                "--stream-output", str(stream)]
        assert main(balanced) == 0
        capsys.readouterr()

        # same command, same model: resumable
        assert main(balanced + ["--resume", str(stream)]) == 0
        capsys.readouterr()

        # a *different* cost model plans a (potentially) different slice
        import json

        payload = json.loads(full.read_text())
        payload["records"][0]["time_s"] = 99.0
        other = tmp_path / "other.json"
        other.write_text(json.dumps(payload))
        code = main(self.ARGS + ["--shard", "1/2", "--balance", "cost",
                                 "--cost-model", str(other),
                                 "--resume", str(stream)])
        assert code == 2
        assert "different shard plan" in capsys.readouterr().err

    def test_resume_without_balance_flag_rejected(self, tmp_path, capsys):
        full = tmp_path / "full.json"
        assert main(self.ARGS + ["--output", str(full)]) == 0
        stream = tmp_path / "s1.jsonl"
        assert main(self.ARGS + ["--shard", "1/2", "--balance", "cost",
                                 "--cost-model", str(full),
                                 "--stream-output", str(stream)]) == 0
        capsys.readouterr()
        code = main(self.ARGS + ["--shard", "1/2", "--resume", str(stream)])
        assert code == 2
        assert "different shard plan" in capsys.readouterr().err


class TestResumeGuardScope:
    ARGS = ["suite", "POW9", "CAN1072", "--algorithms", "rcm,gps",
            "--scale", "0.02", "--no-progress"]

    def test_unsharded_stream_resumable_under_any_dispatch_flags(self, tmp_path, capsys):
        """Without --shard there is no slice selection, so --balance cost /
        --cost-model on the resume only reorder dispatch and must not be
        rejected as a different plan."""
        full = tmp_path / "full.json"
        assert main(self.ARGS + ["--output", str(full)]) == 0
        stream = tmp_path / "run.jsonl"
        assert main(self.ARGS + ["--stream-output", str(stream)]) == 0
        capsys.readouterr()
        code = main(self.ARGS + ["--balance", "cost", "--cost-model", str(full),
                                 "--resume", str(stream)])
        assert code == 0
        assert "4 reused from" in capsys.readouterr().out

    def test_merge_detects_stream_by_content_not_extension(self, tmp_path):
        from repro.batch import SuiteResult

        full = tmp_path / "full.json"
        stream = tmp_path / "run.log"  # not .jsonl
        assert main(self.ARGS + ["--output", str(full),
                                 "--stream-output", str(stream)]) == 0
        merged = tmp_path / "merged.json"
        assert main(["merge", str(stream), "--output", str(merged)]) == 0
        assert SuiteResult.load(merged).to_json(include_timing=False) == \
            SuiteResult.load(full).to_json(include_timing=False)

    def test_merge_header_only_stream_reports_incomplete(self, tmp_path, capsys):
        stream = tmp_path / "dead.jsonl"
        assert main(self.ARGS + ["--stream-output", str(stream)]) == 0
        stream.write_text(stream.read_text().splitlines()[0] + "\n")
        capsys.readouterr()
        code = main(["merge", str(stream), "--output", str(tmp_path / "m.json")])
        assert code == 2
        assert "incomplete shard set" in capsys.readouterr().err


class TestTimeoutAutoAndFiedlerPolicy:
    """--timeout auto (cost-model-derived per-cell limits) and
    --fiedler-policy fast (the spectral rank-stability path)."""

    def test_timeout_auto_rejects_garbage(self, capsys):
        code = main(["suite", "POW9", "--algorithms", "rcm", "--scale", "0.02",
                     "--timeout", "soon"])
        assert code == 2
        assert "'auto'" in capsys.readouterr().err

    def test_timeout_auto_without_model_warns_and_runs(self, capsys):
        code = main(["suite", "POW9", "--algorithms", "rcm", "--scale", "0.02",
                     "--timeout", "auto", "--no-progress"])
        assert code == 0
        assert "only analytic-size problems" in capsys.readouterr().err

    def test_timeout_auto_kills_observed_overrunner(self, tmp_path, monkeypatch,
                                                    capsys):
        import time

        from repro.batch import CostModel
        from repro.orderings.registry import ORDERING_ALGORITHMS

        monkeypatch.setitem(ORDERING_ALGORITHMS, "sleepy",
                            lambda p: time.sleep(30))
        # the model has seen this cell run fast: estimate * 10 (floored at
        # 1 s) becomes its limit, so the hung rerun is terminated
        model = CostModel()
        model.observe("POW9", "sleepy", 0.02, time_s=0.01)
        costs = tmp_path / "costs.json"
        model.save(costs)
        start = time.monotonic()
        code = main(["suite", "POW9", "--algorithms", "rcm,sleepy",
                     "--scale", "0.02", "--timeout", "auto",
                     "--cost-model", str(costs), "--no-progress"])
        assert time.monotonic() - start < 20
        assert code == 1
        out = capsys.readouterr().out
        assert "TIMEOUT POW9/sleepy" in out

    def test_fiedler_policy_fast_suite_stays_ok_and_comparable(self):
        """The fast policy is opt-in: it must keep every cell ok and the
        envelope quality in the same class as the default path (the golden
        suite separately pins that the *default* path is untouched)."""
        from repro.batch import run_suite

        default = run_suite(["CAN1072", "POW9"], ("spectral", "hybrid"),
                            scale=0.02)
        fast = run_suite(["CAN1072", "POW9"], ("spectral", "hybrid"),
                         scale=0.02,
                         algorithm_options={"spectral": {"tol_policy": "ordering"},
                                            "hybrid": {"tol_policy": "ordering"}})
        assert fast.failures == []
        for d, f in zip(default.records, fast.records):
            assert f.status == "ok"
            assert f.metrics["envelope_size"] <= 1.05 * d.metrics["envelope_size"]

    def test_fiedler_policy_flag_accepted(self, capsys):
        code = main(["suite", "POW9", "--algorithms", "spectral",
                     "--scale", "0.02", "--fiedler-policy", "fast",
                     "--no-progress"])
        assert code == 0


class TestMergeAllowPartialCli:
    ARGS = ["suite", "POW9", "--algorithms", "rcm,gps", "--scale", "0.02",
            "--no-progress"]

    def _torn_stream(self, tmp_path):
        stream = tmp_path / "run.jsonl"
        assert main(self.ARGS + ["--stream-output", str(stream)]) == 0
        lines = stream.read_text().splitlines()
        # Tear the *first* record: mid-file damage, which the strict reader
        # rejects as corruption (a torn final line would merely resume).
        lines[1] = lines[1][:25]
        stream.write_text("\n".join(lines) + "\n")
        return stream

    def test_torn_stream_rejected_by_default(self, tmp_path, capsys):
        stream = self._torn_stream(tmp_path)
        capsys.readouterr()
        code = main(["merge", str(stream),
                     "--output", str(tmp_path / "merged.json")])
        assert code == 2
        assert "not a valid stream file" in capsys.readouterr().err

    def test_allow_partial_salvages_and_warns(self, tmp_path, capsys):
        import json

        stream = self._torn_stream(tmp_path)
        merged_path = tmp_path / "merged.json"
        capsys.readouterr()
        code = main(["merge", str(stream), "--allow-partial",
                     "--output", str(merged_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "dropped 1 damaged line(s)" in captured.err
        assert "merged artifact is partial" in captured.err
        assert "dropped_lines=1" in captured.err
        assert "missing_cells=1" in captured.err
        payload = json.loads(merged_path.read_text())
        assert payload["partial"] == {"dropped_lines": 1, "missing_cells": 1}
        assert len(payload["records"]) == 1


class TestChaosCli:
    def test_invalid_fault_spec_errors(self, capsys):
        code = main(["chaos", "suite", "POW9",
                     "--inject-faults", "definitely-not-a-spec"])
        assert code == 2
        assert "--inject-faults" in capsys.readouterr().err

    def test_chaos_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos"])


class TestOrderRetriesCli:
    def test_retries_against_dead_server_exhaust_and_fail(self, capsys):
        # Nothing listens on the port: every attempt is connection-refused.
        code = main(["order", "problem:POW9@0.02", "--algorithm", "rcm",
                     "--server", "http://127.0.0.1:9",
                     "--retries", "1", "--retry-backoff", "0.01"])
        assert code != 0
