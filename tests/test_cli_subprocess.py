"""End-to-end CLI tests that invoke ``python -m repro`` as real subprocesses.

The in-process tests (``tests/test_cli.py``) call ``repro.cli.main``
directly; these run the actual entry point the docs advertise — fresh
interpreter, real exit codes, real SIGKILL — at tiny scales.  They are the
executable form of the workflows in ``docs/running.md``, and CI runs them
in the docs job as well as the normal test matrix.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
ARGS = ["suite", "POW9", "CAN1072", "--algorithms", "rcm,gps",
        "--scale", "0.02", "--no-progress"]


def repro(*args, timeout: float = 120.0, cwd=None) -> subprocess.CompletedProcess:
    """Run ``python -m repro <args>`` with the repo's src on PYTHONPATH."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout, env=env, cwd=cwd,
    )


def canonical(path) -> str:
    """Canonical (timing-free) JSON of a saved artifact, for byte comparison."""
    from repro.batch import SuiteResult

    return SuiteResult.load(path).to_json(include_timing=False)


class TestSuiteSubprocess:
    def test_suite_runs_and_writes_artifact(self, tmp_path):
        out = tmp_path / "results.json"
        proc = repro(*ARGS, "--output", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "4 task(s)" in proc.stdout
        payload = json.loads(out.read_text())
        assert payload["engine"] == "repro.batch"
        assert len(payload["records"]) == 4

    def test_unknown_algorithm_exits_2(self):
        proc = repro("suite", "POW9", "--algorithms", "rcm,amd", "--scale", "0.02")
        assert proc.returncode == 2
        assert "unknown algorithm" in proc.stderr

    def test_baseline_match_then_drift(self, tmp_path):
        out = tmp_path / "results.json"
        assert repro(*ARGS, "--output", str(out)).returncode == 0

        proc = repro(*ARGS, "--baseline", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "matches baseline" in proc.stdout

        payload = json.loads(out.read_text())
        payload["records"][0]["metrics"]["envelope_size"] += 1
        out.write_text(json.dumps(payload))
        proc = repro(*ARGS, "--baseline", str(out))
        assert proc.returncode == 1
        assert "difference(s) vs baseline" in proc.stderr
        assert "envelope_size" in proc.stderr

    def test_cost_balanced_shards_merge_byte_identically(self, tmp_path):
        full = tmp_path / "full.json"
        assert repro(*ARGS, "--output", str(full)).returncode == 0
        paths = []
        for k in (1, 2):
            path = tmp_path / f"shard{k}.json"
            proc = repro(*ARGS, "--shard", f"{k}/2", "--balance", "cost",
                         "--cost-model", str(full), "--output", str(path))
            assert proc.returncode == 0, proc.stderr
            assert "cost balance" in proc.stderr
            assert "estimated makespan" in proc.stderr
            paths.append(str(path))
        merged = tmp_path / "merged.json"
        proc = repro("merge", *paths, "--output", str(merged))
        assert proc.returncode == 0, proc.stderr
        assert canonical(merged) == canonical(full)


class TestMergeSubprocess:
    def test_merge_incomplete_exits_2(self, tmp_path):
        shard = tmp_path / "shard1.json"
        assert repro(*ARGS, "--shard", "1/2", "--output", str(shard)).returncode == 0
        proc = repro("merge", str(shard), "--output", str(tmp_path / "m.json"))
        assert proc.returncode == 2
        assert "incomplete shard set" in proc.stderr

    def test_merge_accepts_stream_files(self, tmp_path):
        full = tmp_path / "full.json"
        stream = tmp_path / "run.jsonl"
        assert repro(*ARGS, "--output", str(full),
                     "--stream-output", str(stream)).returncode == 0
        merged = tmp_path / "merged.json"
        proc = repro("merge", str(stream), "--output", str(merged))
        assert proc.returncode == 0, proc.stderr
        assert canonical(merged) == canonical(full)


class TestResumeAfterSigkill:
    def test_stream_resume_after_sigkill(self, tmp_path):
        """Kill a streaming run mid-flight with SIGKILL, resume it, and get
        the byte-identical artifact of an uninterrupted run."""
        full = tmp_path / "full.json"
        assert repro(*ARGS, "--output", str(full)).returncode == 0

        stream = tmp_path / "run.jsonl"
        resumed_out = tmp_path / "resumed.json"
        stream_args = ARGS + ["--stream-output", str(stream),
                              "--resume", str(stream)]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *stream_args],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
        )
        try:
            # Wait for at least one streamed record, then kill -9.  If the
            # run wins the race and exits first, the resume below still has
            # to reuse the complete stream — both paths are valid outcomes.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and proc.poll() is None:
                if stream.exists() and stream.read_text().count('"kind": "record"') >= 1:
                    break
                time.sleep(0.01)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60.0)
        finally:
            if proc.poll() is None:  # pragma: no cover - safety net
                proc.kill()

        resumed = repro(*stream_args, "--output", str(resumed_out))
        assert resumed.returncode == 0, resumed.stderr
        assert canonical(resumed_out) == canonical(full)
        # the stream is complete again: one header + one record per cell
        lines = [json.loads(line) for line in stream.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        assert sum(1 for line in lines if line["kind"] == "record") >= 4


class TestBenchSubprocess:
    def test_bench_quick_filtered_writes_artifact_and_cost_model(self, tmp_path):
        artifact = tmp_path / "bench.json"
        costs = tmp_path / "costs.json"
        proc = repro("bench", "--quick", "--repeats", "1",
                     "--filter", "orderings/rcm", "--output", str(artifact),
                     "--export-cost-model", str(costs), timeout=300.0)
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(artifact.read_text())
        assert payload["kind"] == "repro-bench"
        assert all("orderings/rcm" in k["name"] for k in payload["kernels"])
        model = json.loads(costs.read_text())
        assert model["kind"] == "repro-cost-model"
        assert len(model["entries"]) == len(payload["kernels"])

    def test_bench_cost_model_feeds_suite_balance(self, tmp_path):
        """The exported model is accepted by repro suite --balance cost."""
        costs = tmp_path / "costs.json"
        artifact = tmp_path / "bench.json"
        assert repro("bench", "--quick", "--repeats", "1",
                     "--filter", "orderings/rcm", "--output", str(artifact),
                     "--export-cost-model", str(costs),
                     timeout=300.0).returncode == 0
        proc = repro(*ARGS, "--shard", "1/2", "--balance", "cost",
                     "--cost-model", str(costs),
                     "--output", str(tmp_path / "s1.json"))
        assert proc.returncode == 0, proc.stderr
        assert "cost balance" in proc.stderr


class TestRetrySubprocess:
    def test_retry_timeouts_without_timeout_exits_2(self):
        proc = repro("suite", "POW9", "--algorithms", "rcm", "--scale", "0.02",
                     "--retry-timeouts", "1")
        assert proc.returncode == 2
        assert "--retry-timeouts needs --timeout" in proc.stderr

    def test_generous_timeout_with_retries_passes_through(self, tmp_path):
        """Retry flags on a suite where nothing times out are a no-op."""
        out = tmp_path / "results.json"
        proc = repro(*ARGS, "--timeout", "120", "--retry-timeouts", "2",
                     "--timeout-growth", "3.0", "--output", str(out))
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(out.read_text())
        assert [r["status"] for r in payload["records"]] == ["ok"] * 4


class TestOrderSubprocess:
    """The ``repro order`` thin client — in-process fallback and server mode."""

    def test_order_local_json(self):
        proc = repro("order", "problem:POW9@0.02", "--algorithm", "rcm",
                     "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["record"]["status"] == "ok"
        assert payload["record"]["problem"] == "POW9"
        assert sorted(payload["permutation"]) == \
            list(range(payload["record"]["n"]))

    def test_order_human_summary_and_permutation_file(self, tmp_path):
        perm = tmp_path / "perm.txt"
        proc = repro("order", "problem:POW9@0.02", "--algorithm", "gps",
                     "--output-permutation", str(perm))
        assert proc.returncode == 0, proc.stderr
        assert "envelope size" in proc.stdout
        assert perm.exists() and perm.read_text().strip()

    def test_order_unknown_problem_exits_2(self):
        proc = repro("order", "problem:NOSUCH", "--algorithm", "rcm")
        assert proc.returncode == 2
        assert "unknown problem" in proc.stderr

    def test_order_server_matches_local_byte_for_byte(self):
        from tests.serve_harness import ServerProcess

        local = repro("order", "problem:POW9@0.02", "--algorithm", "rcm",
                      "--json")
        assert local.returncode == 0, local.stderr
        with ServerProcess("--workers", "1") as server:
            served = repro("order", "problem:POW9@0.02", "--algorithm", "rcm",
                           "--server", server.url, "--json")
        assert served.returncode == 0, served.stderr
        a, b = json.loads(local.stdout), json.loads(served.stdout)
        a["record"].pop("time_s"), b["record"].pop("time_s")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_order_file_input_round_trips_inline(self, tmp_path):
        from tests.serve_harness import ServerProcess

        matrix = tmp_path / "small.mtx"
        assert repro("reorder", "problem:POW9@0.02", "--algorithm", "identity",
                     "--output-matrix", str(matrix)).returncode == 0
        with ServerProcess("--workers", "1") as server:
            served = repro("order", str(matrix), "--algorithm", "rcm",
                           "--server", server.url, "--json")
            local = repro("order", str(matrix), "--algorithm", "rcm", "--json")
        assert served.returncode == 0, served.stderr
        assert local.returncode == 0, local.stderr
        a, b = json.loads(local.stdout), json.loads(served.stdout)
        assert a["record"]["problem"].startswith("inline:")
        a["record"].pop("time_s"), b["record"].pop("time_s")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_order_unreachable_server_exits_2(self):
        proc = repro("order", "problem:POW9@0.02", "--algorithm", "rcm",
                     "--server", "http://127.0.0.1:9", "--client-timeout", "2")
        assert proc.returncode == 2
        assert "cannot reach server" in proc.stderr
