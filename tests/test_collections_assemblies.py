"""Unit tests for the irregular assembly generators (shell assemblies, perforated solids)."""

import numpy as np
import pytest

from repro.collections.generators import (
    cylinder_shell_pattern,
    perforated_solid_pattern,
    shell_assembly_pattern,
)
from repro.collections.meshes import grid3d_pattern
from repro.envelope.metrics import envelope_size
from repro.graph.components import is_connected


class TestShellAssembly:
    def test_connected_and_sized(self):
        pattern = shell_assembly_pattern(
            segments=((10, 16), (8, 20)), dofs_per_node=1, cutouts=1, panels=1, seed=1
        )
        assert is_connected(pattern)
        # segments give 10*16 + 8*20 = 320 shell nodes, minus cutouts, plus panels
        assert 250 <= pattern.n <= 380

    def test_multi_dof_expansion(self):
        base = shell_assembly_pattern(segments=((6, 10),), dofs_per_node=1, cutouts=0, panels=0)
        expanded = shell_assembly_pattern(segments=((6, 10),), dofs_per_node=3, cutouts=0, panels=0)
        assert expanded.n == 3 * base.n

    def test_deterministic(self):
        a = shell_assembly_pattern(segments=((8, 12), (6, 14)), seed=7)
        b = shell_assembly_pattern(segments=((8, 12), (6, 14)), seed=7)
        assert a == b

    def test_cutouts_remove_vertices(self):
        intact = shell_assembly_pattern(segments=((12, 20),), cutouts=0, panels=0, seed=3)
        cut = shell_assembly_pattern(segments=((12, 20),), cutouts=3, panels=0, seed=3)
        assert cut.n < intact.n

    def test_panels_add_vertices(self):
        plain = shell_assembly_pattern(segments=((12, 20),), cutouts=0, panels=0, seed=3)
        panelled = shell_assembly_pattern(segments=((12, 20),), cutouts=0, panels=3, seed=3)
        assert panelled.n > plain.n

    def test_segments_are_joined(self):
        # with two segments and no cutouts/panels, connectivity across the
        # joint is what makes the whole assembly a single component
        pattern = shell_assembly_pattern(segments=((5, 8), (5, 12)), cutouts=0, panels=0)
        assert is_connected(pattern)
        assert pattern.n == 5 * 8 + 5 * 12

    def test_harder_for_local_orderings_than_plain_cylinder(self):
        """The assembly's irregularity is the point: the spectral ordering's
        relative advantage over RCM must be at least as good as on a plain
        cylinder of similar size."""
        from repro.orderings.cuthill_mckee import rcm_ordering
        from repro.orderings.spectral import spectral_ordering

        plain = cylinder_shell_pattern(n_axial=18, n_around=16)
        assembly = shell_assembly_pattern(
            segments=((10, 16), (8, 20)), cutouts=2, panels=2, seed=5
        )

        def ratio(pattern):
            rcm = envelope_size(pattern, rcm_ordering(pattern).perm)
            spec = envelope_size(pattern, spectral_ordering(pattern, method="lanczos", rng=0).perm)
            return rcm / max(spec, 1)

        assert ratio(assembly) >= 0.8 * ratio(plain)


class TestPerforatedSolid:
    def test_connected_and_smaller_than_full_brick(self):
        full = grid3d_pattern(10, 8, 6, stencil=27)
        perforated = perforated_solid_pattern(
            nx=10, ny=8, nz=6, cavities=2, appendages=0, seed=2
        )
        assert is_connected(perforated)
        assert perforated.n < full.n

    def test_appendages_add_vertices(self):
        base = perforated_solid_pattern(nx=8, ny=6, nz=5, cavities=0, appendages=0, seed=4)
        extended = perforated_solid_pattern(nx=8, ny=6, nz=5, cavities=0, appendages=2, seed=4)
        assert extended.n > base.n
        assert is_connected(extended)

    def test_multi_dof(self):
        single = perforated_solid_pattern(nx=6, ny=5, nz=4, cavities=1, seed=6)
        triple = perforated_solid_pattern(nx=6, ny=5, nz=4, cavities=1, dofs_per_node=3, seed=6)
        assert triple.n == 3 * single.n

    def test_deterministic(self):
        a = perforated_solid_pattern(nx=7, ny=6, nz=5, cavities=2, appendages=1, seed=11)
        b = perforated_solid_pattern(nx=7, ny=6, nz=5, cavities=2, appendages=1, seed=11)
        assert a == b

    def test_row_density_high_with_27_stencil(self):
        pattern = perforated_solid_pattern(nx=8, ny=7, nz=6, cavities=1, seed=8)
        assert pattern.nnz / pattern.n > 10
