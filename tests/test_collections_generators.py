"""Unit tests for the unstructured generators (repro.collections.generators)."""

import numpy as np
import pytest

from repro.collections.generators import (
    airfoil_pattern,
    annulus_pattern,
    cylinder_shell_pattern,
    plate_with_holes_pattern,
    power_network_pattern,
    random_geometric_pattern,
)
from repro.graph.components import is_connected


class TestAirfoil:
    def test_connected_and_planar_like(self):
        p = airfoil_pattern(500, seed=1)
        assert is_connected(p)
        # planar triangulations have average degree < 6
        assert p.degree().mean() < 6.5
        assert p.n > 300

    def test_deterministic(self):
        a = airfoil_pattern(300, seed=5)
        b = airfoil_pattern(300, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        assert airfoil_pattern(300, seed=1) != airfoil_pattern(300, seed=2)

    def test_size_scales(self):
        small = airfoil_pattern(200, seed=3)
        large = airfoil_pattern(800, seed=3)
        assert large.n > 2 * small.n


class TestAnnulus:
    def test_size(self):
        p = annulus_pattern(5, 20)
        assert p.n == 100
        assert is_connected(p)

    def test_periodic_in_angle(self):
        p = annulus_pattern(3, 8)
        assert p.has_edge(0, 7)  # ring 0: vertex 0 adjacent to vertex 7 (wrap)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            annulus_pattern(1, 10)


class TestCylinderShell:
    def test_basic(self):
        p = cylinder_shell_pattern(10, 12)
        assert p.n == 120
        assert is_connected(p)

    def test_multi_dof(self):
        base = cylinder_shell_pattern(6, 8, dofs_per_node=1)
        expanded = cylinder_shell_pattern(6, 8, dofs_per_node=3)
        assert expanded.n == 3 * base.n

    def test_stiffeners_add_edges(self):
        plain = cylinder_shell_pattern(12, 16, stiffener_every=0)
        stiffened = cylinder_shell_pattern(12, 16, stiffener_every=3)
        assert stiffened.num_edges > plain.num_edges


class TestPlateWithHoles:
    def test_holes_remove_vertices(self):
        full = plate_with_holes_pattern(30, 20, holes=0, seed=1)
        holed = plate_with_holes_pattern(30, 20, holes=3, seed=1)
        assert holed.n < full.n
        assert is_connected(holed)

    def test_no_holes_is_full_grid(self):
        p = plate_with_holes_pattern(10, 8, holes=0, seed=0)
        assert p.n == 80


class TestPowerNetwork:
    def test_sparse_and_connected(self):
        p = power_network_pattern(800, seed=9)
        assert is_connected(p)
        # power networks are very sparse: mean degree around 2-3
        assert p.degree().mean() < 3.5

    def test_deterministic(self):
        assert power_network_pattern(300, seed=2) == power_network_pattern(300, seed=2)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            power_network_pattern(1)


class TestRandomGeometric:
    def test_connected_with_default_radius(self):
        p = random_geometric_pattern(300, seed=6)
        assert is_connected(p)
        assert p.n > 200

    def test_radius_controls_density(self):
        sparse = random_geometric_pattern(200, radius=0.08, seed=3)
        dense = random_geometric_pattern(200, radius=0.25, seed=3)
        assert dense.num_edges > sparse.num_edges

    def test_deterministic(self):
        assert random_geometric_pattern(150, seed=4) == random_geometric_pattern(150, seed=4)
