"""Unit tests for the synthetic generators (repro.collections.generators
and the random-graph families of repro.collections.random_graphs)."""

import numpy as np
import pytest

from repro.collections.generators import (
    airfoil_pattern,
    annulus_pattern,
    cylinder_shell_pattern,
    plate_with_holes_pattern,
    power_network_pattern,
    random_geometric_pattern,
)
from repro.collections.random_graphs import (
    RANDOM_PROBLEMS,
    barabasi_albert_pattern,
    erdos_renyi_gnm_pattern,
    erdos_renyi_gnp_pattern,
    rmat_pattern,
    watts_strogatz_pattern,
)
from repro.graph.components import is_connected


class TestAirfoil:
    def test_connected_and_planar_like(self):
        p = airfoil_pattern(500, seed=1)
        assert is_connected(p)
        # planar triangulations have average degree < 6
        assert p.degree().mean() < 6.5
        assert p.n > 300

    def test_deterministic(self):
        a = airfoil_pattern(300, seed=5)
        b = airfoil_pattern(300, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        assert airfoil_pattern(300, seed=1) != airfoil_pattern(300, seed=2)

    def test_size_scales(self):
        small = airfoil_pattern(200, seed=3)
        large = airfoil_pattern(800, seed=3)
        assert large.n > 2 * small.n


class TestAnnulus:
    def test_size(self):
        p = annulus_pattern(5, 20)
        assert p.n == 100
        assert is_connected(p)

    def test_periodic_in_angle(self):
        p = annulus_pattern(3, 8)
        assert p.has_edge(0, 7)  # ring 0: vertex 0 adjacent to vertex 7 (wrap)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            annulus_pattern(1, 10)


class TestCylinderShell:
    def test_basic(self):
        p = cylinder_shell_pattern(10, 12)
        assert p.n == 120
        assert is_connected(p)

    def test_multi_dof(self):
        base = cylinder_shell_pattern(6, 8, dofs_per_node=1)
        expanded = cylinder_shell_pattern(6, 8, dofs_per_node=3)
        assert expanded.n == 3 * base.n

    def test_stiffeners_add_edges(self):
        plain = cylinder_shell_pattern(12, 16, stiffener_every=0)
        stiffened = cylinder_shell_pattern(12, 16, stiffener_every=3)
        assert stiffened.num_edges > plain.num_edges


class TestPlateWithHoles:
    def test_holes_remove_vertices(self):
        full = plate_with_holes_pattern(30, 20, holes=0, seed=1)
        holed = plate_with_holes_pattern(30, 20, holes=3, seed=1)
        assert holed.n < full.n
        assert is_connected(holed)

    def test_no_holes_is_full_grid(self):
        p = plate_with_holes_pattern(10, 8, holes=0, seed=0)
        assert p.n == 80


class TestPowerNetwork:
    def test_sparse_and_connected(self):
        p = power_network_pattern(800, seed=9)
        assert is_connected(p)
        # power networks are very sparse: mean degree around 2-3
        assert p.degree().mean() < 3.5

    def test_deterministic(self):
        assert power_network_pattern(300, seed=2) == power_network_pattern(300, seed=2)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            power_network_pattern(1)


class TestRandomGeometric:
    def test_connected_with_default_radius(self):
        p = random_geometric_pattern(300, seed=6)
        assert is_connected(p)
        assert p.n > 200

    def test_radius_controls_density(self):
        sparse = random_geometric_pattern(200, radius=0.08, seed=3)
        dense = random_geometric_pattern(200, radius=0.25, seed=3)
        assert dense.num_edges > sparse.num_edges

    def test_deterministic(self):
        assert random_geometric_pattern(150, seed=4) == random_geometric_pattern(150, seed=4)


# --------------------------------------------------------------------------- #
# random-graph families (repro.collections.random_graphs)
# --------------------------------------------------------------------------- #
def _pattern_bytes(pattern) -> bytes:
    """The CSR arrays as raw bytes — the strictest determinism check."""
    return pattern.indptr.tobytes() + pattern.indices.tobytes()


#: One representative builder per family, at a size where every property
#: (connectivity, degree shape) is stable but the tests stay fast.
FAMILY_BUILDERS = {
    "ba": lambda seed: barabasi_albert_pattern(600, m=4, seed=seed),
    "gnp": lambda seed: erdos_renyi_gnp_pattern(600, avg_degree=8.0, seed=seed),
    "gnm": lambda seed: erdos_renyi_gnm_pattern(600, n_edges=2400, seed=seed),
    "ws": lambda seed: watts_strogatz_pattern(600, k=6, beta=0.1, seed=seed),
    "rmat": lambda seed: rmat_pattern(9, edge_factor=8, seed=seed),
}


class TestRandomFamilyProperties:
    """Shared property tests: every family, same four invariants."""

    @pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
    def test_seed_determinism_byte_identical(self, family):
        build = FAMILY_BUILDERS[family]
        a, b = build(7), build(7)
        assert a == b
        assert _pattern_bytes(a) == _pattern_bytes(b)

    @pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
    def test_different_seeds_differ(self, family):
        build = FAMILY_BUILDERS[family]
        assert build(1) != build(2)

    @pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
    def test_pattern_invariants(self, family):
        # validate() checks the full SymmetricPattern contract: sorted,
        # duplicate-free CSR rows, no self-loops, exact symmetry.
        pattern = FAMILY_BUILDERS[family](3)
        pattern.validate()
        degrees = pattern.degree()
        assert degrees.min() >= 1  # the component trim leaves no isolated vertex

    @pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
    def test_connected(self, family):
        assert is_connected(FAMILY_BUILDERS[family](5))


class TestRegisteredRandomSpecs:
    """The RANDOM/* registry entries and their analytic size contract."""

    @pytest.mark.parametrize("name", sorted(RANDOM_PROBLEMS))
    def test_registered_names_are_normalized(self, name):
        assert name == name.strip().upper()
        assert name.startswith("RANDOM/")

    @pytest.mark.parametrize("name", sorted(RANDOM_PROBLEMS))
    @pytest.mark.parametrize("scale", [0.002, 0.01])
    def test_measured_nnz_matches_expected(self, name, scale):
        spec = RANDOM_PROBLEMS[name]
        pattern = spec.build(scale)
        expected = spec.expected_nnz(scale)
        assert expected > 0
        assert abs(pattern.nnz - expected) <= spec.nnz_rtol * expected

    @pytest.mark.parametrize("name", sorted(RANDOM_PROBLEMS))
    def test_expected_n_tracks_built_n(self, name):
        spec = RANDOM_PROBLEMS[name]
        pattern = spec.build(0.01)
        # expected_n is a planning estimate, not a promise; a wide band is
        # enough for cost-model weights (R-MAT trims isolated vertices).
        assert 0.5 * spec.expected_n(0.01) <= pattern.n <= 1.5 * spec.expected_n(0.01)

    @pytest.mark.parametrize("name", sorted(RANDOM_PROBLEMS))
    def test_build_is_deterministic(self, name):
        spec = RANDOM_PROBLEMS[name]
        assert _pattern_bytes(spec.build(0.003)) == _pattern_bytes(spec.build(0.003))

    @pytest.mark.parametrize("name", sorted(RANDOM_PROBLEMS))
    def test_scale_must_be_positive(self, name):
        with pytest.raises(ValueError):
            RANDOM_PROBLEMS[name].build(0.0)


class TestBarabasiAlbert:
    def test_power_law_tail_has_hubs(self):
        pattern = barabasi_albert_pattern(2000, m=4, seed=11)
        degrees = pattern.degree()
        # preferential attachment: the largest hub dwarfs the mean degree
        assert degrees.max() > 5 * degrees.mean()

    def test_m_must_be_smaller_than_n(self):
        with pytest.raises(ValueError):
            barabasi_albert_pattern(4, m=4, seed=0)

    def test_edge_budget(self):
        pattern = barabasi_albert_pattern(1000, m=4, seed=12)
        # n*m multigraph edges minus a small collapse/trim loss
        assert 0.9 * 4 * 1000 <= pattern.num_edges <= 4 * 1000


class TestErdosRenyiGnp:
    def test_mean_degree_near_target(self):
        pattern = erdos_renyi_gnp_pattern(3000, avg_degree=8.0, seed=13)
        assert abs(pattern.degree().mean() - 8.0) < 0.5

    def test_p_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnp_pattern(100, p=1.5, seed=0)


class TestErdosRenyiGnm:
    def test_exact_edge_count_modulo_trim(self):
        pattern = erdos_renyi_gnm_pattern(1000, n_edges=4000, seed=14)
        # exactly 4000 distinct edges drawn; only the component trim loses any
        assert 0.98 * 4000 <= pattern.num_edges <= 4000

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm_pattern(10, n_edges=100, seed=0)


class TestWattsStrogatz:
    def test_beta_zero_is_exact_ring_lattice(self):
        pattern = watts_strogatz_pattern(200, k=6, beta=0.0, seed=15)
        assert pattern.n == 200
        assert pattern.num_edges == 200 * 3
        assert (pattern.degree() == 6).all()

    def test_rewiring_shrinks_diameter(self):
        from repro.graph.peripheral import pseudo_diameter

        def eccentricity(pattern):
            return len(pseudo_diameter(pattern)[-1].levels) - 1

        ring = watts_strogatz_pattern(400, k=6, beta=0.0, seed=16)
        small_world = watts_strogatz_pattern(400, k=6, beta=0.2, seed=16)
        assert eccentricity(small_world) < eccentricity(ring)

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz_pattern(100, k=5, seed=0)


class TestRmat:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            rmat_pattern(8, probabilities=(0.5, 0.3, 0.3, 0.3), seed=0)

    def test_skewed_quadrants_make_hubs(self):
        pattern = rmat_pattern(11, edge_factor=8, seed=17)
        degrees = pattern.degree()
        assert degrees.max() > 10 * degrees.mean()
