"""Unit tests for the structured mesh generators (repro.collections.meshes)."""

import numpy as np
import pytest

from repro.collections.meshes import (
    binary_tree_pattern,
    complete_pattern,
    cycle_pattern,
    grid2d_pattern,
    grid3d_pattern,
    multi_dof_pattern,
    path_pattern,
    star_pattern,
)
from repro.graph.components import is_connected


class TestElementaryGraphs:
    def test_path(self):
        p = path_pattern(7)
        assert p.n == 7 and p.num_edges == 6
        assert is_connected(p)
        assert p.max_degree() == 2

    def test_cycle(self):
        c = cycle_pattern(8)
        assert c.num_edges == 8
        np.testing.assert_array_equal(c.degree(), 2 * np.ones(8, dtype=int))

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_pattern(2)

    def test_star(self):
        s = star_pattern(6)
        assert s.degree(0) == 5
        assert all(s.degree(i) == 1 for i in range(1, 6))

    def test_complete(self):
        k = complete_pattern(5)
        assert k.num_edges == 10
        assert k.max_degree() == 4

    def test_binary_tree(self):
        t = binary_tree_pattern(3)
        assert t.n == 15
        assert t.num_edges == 14
        assert is_connected(t)
        # leaves have degree 1, root degree 2, internal nodes degree 3
        degrees = sorted(t.degree().tolist())
        assert degrees.count(1) == 8
        assert degrees.count(3) == 6
        assert degrees.count(2) == 1


class TestGrid2D:
    def test_five_point_counts(self):
        g = grid2d_pattern(4, 6)
        assert g.n == 24
        assert g.num_edges == 4 * 5 + 3 * 6  # horizontal + vertical edges

    def test_nine_point_has_diagonals(self):
        g5 = grid2d_pattern(5, 5, stencil=5)
        g9 = grid2d_pattern(5, 5, stencil=9)
        assert g9.num_edges > g5.num_edges
        assert g9.has_edge(0, 6)  # (0,0)-(1,1) diagonal
        assert not g5.has_edge(0, 6)

    def test_connected(self):
        assert is_connected(grid2d_pattern(9, 3))

    def test_interior_degree(self):
        g = grid2d_pattern(5, 5)
        assert g.degree(12) == 4  # centre vertex of the 5x5 grid

    def test_invalid_stencil(self):
        with pytest.raises(ValueError):
            grid2d_pattern(3, 3, stencil=7)

    def test_degenerate_1d_grid_is_path(self):
        g = grid2d_pattern(1, 10)
        assert g.num_edges == 9
        assert g.max_degree() == 2


class TestGrid3D:
    def test_seven_point_counts(self):
        g = grid3d_pattern(3, 4, 5)
        assert g.n == 60
        expected_edges = 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4
        assert g.num_edges == expected_edges

    def test_27_point_denser(self):
        g7 = grid3d_pattern(4, 4, 4, stencil=7)
        g27 = grid3d_pattern(4, 4, 4, stencil=27)
        assert g27.num_edges > g7.num_edges
        assert g27.max_degree() == 26

    def test_connected(self):
        assert is_connected(grid3d_pattern(3, 3, 3, stencil=27))

    def test_invalid_stencil(self):
        with pytest.raises(ValueError):
            grid3d_pattern(2, 2, 2, stencil=9)


class TestMultiDof:
    def test_order_multiplied(self):
        base = path_pattern(5)
        expanded = multi_dof_pattern(base, 3)
        assert expanded.n == 15

    def test_intra_node_coupling(self):
        base = path_pattern(2)
        expanded = multi_dof_pattern(base, 2)
        # node 0 -> unknowns 0,1; node 1 -> unknowns 2,3; all pairs coupled
        assert expanded.has_edge(0, 1)
        assert expanded.has_edge(2, 3)
        assert expanded.has_edge(0, 2) and expanded.has_edge(1, 3) and expanded.has_edge(0, 3)

    def test_row_density_scales(self):
        base = grid2d_pattern(6, 6, stencil=9)
        expanded = multi_dof_pattern(base, 3)
        base_density = base.nnz / base.n
        expanded_density = expanded.nnz / expanded.n
        assert expanded_density > 2.5 * base_density

    def test_single_dof_is_copy(self):
        base = path_pattern(4)
        assert multi_dof_pattern(base, 1) == base

    def test_connectivity_preserved(self):
        base = grid2d_pattern(4, 4)
        assert is_connected(multi_dof_pattern(base, 2))
