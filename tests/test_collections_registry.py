"""Unit tests for the problem registry (repro.collections.registry)."""

import numpy as np
import pytest

from repro.collections.registry import (
    PAPER_PROBLEMS,
    RANDOM_PROBLEMS,
    UnknownProblemError,
    all_problems,
    available_problems,
    default_scale,
    expected_problem_size,
    get_problem_spec,
    has_analytic_size,
    load_problem,
    resolve_problems,
)
from repro.graph.components import is_connected
from repro.orderings.registry import PAPER_ALGORITHMS


class TestRegistryContents:
    def test_all_18_paper_matrices_registered(self):
        assert len(PAPER_PROBLEMS) == 18

    def test_tables_partition(self):
        assert len(available_problems("4.1")) == 6
        assert len(available_problems("4.2")) == 5
        assert len(available_problems("4.3")) == 7
        assert sorted(available_problems()) == sorted(
            available_problems("4.1") + available_problems("4.2") + available_problems("4.3")
        )

    def test_paper_metadata_complete(self):
        for spec in PAPER_PROBLEMS.values():
            assert spec.paper_n > 0
            assert spec.paper_nnz > spec.paper_n
            assert set(spec.paper_envelopes) == set(PAPER_ALGORITHMS)
            assert set(spec.paper_bandwidths) == set(PAPER_ALGORITHMS)
            assert spec.description

    def test_paper_envelope_values_sane(self):
        # Rank-1 algorithm in the paper's Table 4.3 for BARTH4 is SPECTRAL.
        barth4 = PAPER_PROBLEMS["BARTH4"]
        assert min(barth4.paper_envelopes, key=barth4.paper_envelopes.get) == "spectral"
        # And RCM is the fastest / simplest but worst on envelope there.
        assert barth4.paper_envelopes["rcm"] > barth4.paper_envelopes["spectral"]


class TestLoadProblem:
    def test_case_insensitive(self):
        pattern, spec = load_problem("barth4", scale=0.02)
        assert spec.name == "BARTH4"
        assert pattern.n > 50

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            load_problem("NOSUCH")

    def test_scale_controls_size(self):
        small, _ = load_problem("DWT2680", scale=0.02)
        large, _ = load_problem("DWT2680", scale=0.125)
        assert large.n > small.n

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_problem("POW9", scale=0.0)

    @pytest.mark.parametrize("name", sorted(PAPER_PROBLEMS))
    def test_every_surrogate_builds_and_is_connected(self, name):
        pattern, spec = load_problem(name, scale=0.02)
        assert pattern.n >= 20
        assert pattern.num_edges > 0
        assert is_connected(pattern)

    def test_surrogate_density_resembles_paper(self):
        # Structural surrogates should have clearly more nonzeros per row than
        # the power-network surrogate, as in the real collections.
        shell, shell_spec = load_problem("BCSSTK29", scale=0.05)
        power, power_spec = load_problem("POW9", scale=0.05)
        assert shell.nnz / shell.n > 2.5 * (power.nnz / power.n)


class TestUnknownProblemError:
    """Regression tests for the structured unknown-problem error (the old
    code raised a bare KeyError with no suggestions)."""

    def test_is_a_keyerror_with_a_clean_message(self):
        with pytest.raises(UnknownProblemError) as excinfo:
            load_problem("NOSUCH")
        assert isinstance(excinfo.value, KeyError)
        # __str__ must be the message itself, not KeyError's quoted repr
        assert str(excinfo.value).startswith("unknown problem 'NOSUCH'")

    def test_near_miss_suggestions(self):
        with pytest.raises(UnknownProblemError) as excinfo:
            load_problem("BARTH5")
        assert "BARTH4" in excinfo.value.suggestions
        assert "did you mean" in str(excinfo.value)

    def test_carries_structured_fields(self):
        with pytest.raises(UnknownProblemError) as excinfo:
            load_problem("pow8")
        error = excinfo.value
        assert error.name == "pow8"
        assert "POW9" in error.suggestions
        assert error.available == sorted(all_problems())

    def test_cli_exits_2_with_the_structured_message(self, capsys):
        from repro.cli import main

        code = main(["suite", "BARTH5", "--scale", "0.02"])
        captured = capsys.readouterr()
        assert code == 2
        assert "did you mean" in captured.err
        assert "BARTH4" in captured.err

    def test_no_suggestion_for_garbage(self):
        with pytest.raises(UnknownProblemError) as excinfo:
            load_problem("ZZZZZZZZZZ")
        assert excinfo.value.suggestions == []
        assert "did you mean" not in str(excinfo.value)


class TestRandomFamiliesInRegistry:
    def test_random_table_lists_the_families(self):
        names = available_problems("random")
        assert names == sorted(RANDOM_PROBLEMS)
        assert len(names) == 5

    def test_default_listing_stays_paper_only(self):
        # The random families are opt-in: the no-argument default (and hence
        # the default `repro suite` problem set) is still the 18 paper names.
        assert sorted(available_problems()) == sorted(PAPER_PROBLEMS)

    def test_all_problems_is_the_union(self):
        assert set(all_problems()) == set(PAPER_PROBLEMS) | set(RANDOM_PROBLEMS)

    def test_load_problem_builds_random_families(self):
        pattern, spec = load_problem("random/ba", scale=0.001)
        assert spec.name == "RANDOM/BA"
        assert is_connected(pattern)

    def test_get_problem_spec(self):
        assert get_problem_spec("RANDOM/WS").family == "watts-strogatz"
        assert get_problem_spec("pow9").name == "POW9"
        assert get_problem_spec("NOPE") is None


class TestResolveProblems:
    def test_exact_names_pass_through_normalized(self):
        assert resolve_problems(["pow9", "Barth4"]) == ["POW9", "BARTH4"]

    def test_glob_expands_in_registration_order(self):
        assert resolve_problems(["RANDOM/*"]) == [
            "RANDOM/BA", "RANDOM/GNP", "RANDOM/GNM", "RANDOM/WS", "RANDOM/RMAT",
        ]

    def test_glob_is_case_insensitive(self):
        assert resolve_problems(["random/g*"]) == ["RANDOM/GNP", "RANDOM/GNM"]

    def test_duplicates_dropped_preserving_order(self):
        assert resolve_problems(["POW9", "random/*", "RANDOM/BA"]) == [
            "POW9", "RANDOM/BA", "RANDOM/GNP", "RANDOM/GNM", "RANDOM/WS",
            "RANDOM/RMAT",
        ]

    def test_unmatched_glob_raises(self):
        with pytest.raises(UnknownProblemError):
            resolve_problems(["NOPE/*"])

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(UnknownProblemError, match="did you mean"):
            resolve_problems(["RANDOM/B"])


class TestExpectedProblemSize:
    def test_paper_problem_uses_paper_sizes(self):
        spec = PAPER_PROBLEMS["POW9"]
        expected = float(spec.paper_n * spec.paper_nnz) * 0.02**2
        assert expected_problem_size("POW9", 0.02) == pytest.approx(expected)

    def test_random_family_uses_analytic_sizes(self):
        spec = RANDOM_PROBLEMS["RANDOM/BA"]
        expected = float(spec.expected_n(0.01)) * float(spec.expected_nnz(0.01))
        assert expected_problem_size("RANDOM/BA", 0.01) == pytest.approx(expected)

    def test_unknown_problem_is_neutral(self):
        assert expected_problem_size("NOSUCH", 0.02) == 1.0

    def test_has_analytic_size(self):
        assert has_analytic_size("RANDOM/RMAT")
        assert not has_analytic_size("POW9")
        assert not has_analytic_size("NOSUCH")


class TestDefaultScale:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert default_scale() == 0.5

    def test_default_value(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert default_scale() == 0.125

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            default_scale()
