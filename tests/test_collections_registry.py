"""Unit tests for the paper-problem registry (repro.collections.registry)."""

import numpy as np
import pytest

from repro.collections.registry import (
    PAPER_PROBLEMS,
    available_problems,
    default_scale,
    load_problem,
)
from repro.graph.components import is_connected
from repro.orderings.registry import PAPER_ALGORITHMS


class TestRegistryContents:
    def test_all_18_paper_matrices_registered(self):
        assert len(PAPER_PROBLEMS) == 18

    def test_tables_partition(self):
        assert len(available_problems("4.1")) == 6
        assert len(available_problems("4.2")) == 5
        assert len(available_problems("4.3")) == 7
        assert sorted(available_problems()) == sorted(
            available_problems("4.1") + available_problems("4.2") + available_problems("4.3")
        )

    def test_paper_metadata_complete(self):
        for spec in PAPER_PROBLEMS.values():
            assert spec.paper_n > 0
            assert spec.paper_nnz > spec.paper_n
            assert set(spec.paper_envelopes) == set(PAPER_ALGORITHMS)
            assert set(spec.paper_bandwidths) == set(PAPER_ALGORITHMS)
            assert spec.description

    def test_paper_envelope_values_sane(self):
        # Rank-1 algorithm in the paper's Table 4.3 for BARTH4 is SPECTRAL.
        barth4 = PAPER_PROBLEMS["BARTH4"]
        assert min(barth4.paper_envelopes, key=barth4.paper_envelopes.get) == "spectral"
        # And RCM is the fastest / simplest but worst on envelope there.
        assert barth4.paper_envelopes["rcm"] > barth4.paper_envelopes["spectral"]


class TestLoadProblem:
    def test_case_insensitive(self):
        pattern, spec = load_problem("barth4", scale=0.02)
        assert spec.name == "BARTH4"
        assert pattern.n > 50

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            load_problem("NOSUCH")

    def test_scale_controls_size(self):
        small, _ = load_problem("DWT2680", scale=0.02)
        large, _ = load_problem("DWT2680", scale=0.125)
        assert large.n > small.n

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_problem("POW9", scale=0.0)

    @pytest.mark.parametrize("name", sorted(PAPER_PROBLEMS))
    def test_every_surrogate_builds_and_is_connected(self, name):
        pattern, spec = load_problem(name, scale=0.02)
        assert pattern.n >= 20
        assert pattern.num_edges > 0
        assert is_connected(pattern)

    def test_surrogate_density_resembles_paper(self):
        # Structural surrogates should have clearly more nonzeros per row than
        # the power-network surrogate, as in the real collections.
        shell, shell_spec = load_problem("BCSSTK29", scale=0.05)
        power, power_spec = load_problem("POW9", scale=0.05)
        assert shell.nnz / shell.n > 2.5 * (power.nnz / power.n)


class TestDefaultScale:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert default_scale() == 0.5

    def test_default_value(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert default_scale() == 0.125

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            default_scale()
