"""Unit tests for the public pipeline (repro.core.pipeline) and package exports."""

import numpy as np
import pytest

import repro
from repro.collections.generators import airfoil_pattern
from repro.collections.meshes import grid2d_pattern
from repro.core.pipeline import compare_orderings, reorder
from repro.envelope.metrics import envelope_size


class TestReorder:
    def test_spectral_default(self, geometric200):
        report = reorder(geometric200)
        assert report.ordering.algorithm == "spectral"
        assert report.statistics.envelope_size == envelope_size(geometric200, report.ordering.perm)
        assert report.original.envelope_size == envelope_size(geometric200)
        assert report.run_time >= 0.0

    def test_envelope_reduction_ratio(self):
        pattern = airfoil_pattern(400, seed=7)
        report = reorder(pattern, algorithm="spectral")
        assert report.envelope_reduction == pytest.approx(
            report.original.envelope_size / report.statistics.envelope_size
        )

    def test_every_registered_algorithm(self, grid_8x6):
        for name in ("spectral", "rcm", "gps", "gk", "sloan", "hybrid", "cm"):
            report = reorder(grid_8x6, algorithm=name)
            assert sorted(report.ordering.perm.tolist()) == list(range(grid_8x6.n))

    def test_options_forwarded(self, grid_8x6):
        report = reorder(grid_8x6, algorithm="spectral", method="dense")
        assert report.ordering.metadata["solver"] == "dense"

    def test_apply_returns_permuted_matrix(self, grid_8x6, spd_grid_matrix):
        report = reorder(grid_8x6, algorithm="rcm")
        permuted = report.apply(spd_grid_matrix)
        expected = spd_grid_matrix[report.ordering.perm][:, report.ordering.perm]
        np.testing.assert_allclose(permuted.toarray(), expected.toarray())

    def test_apply_to_pattern(self, grid_8x6):
        report = reorder(grid_8x6, algorithm="rcm")
        assert report.apply(grid_8x6).num_edges == grid_8x6.num_edges

    def test_accepts_scipy_input(self, spd_grid_matrix):
        report = reorder(spd_grid_matrix, algorithm="rcm")
        assert report.statistics.envelope_size <= report.original.envelope_size

    def test_unknown_algorithm(self, grid_8x6):
        with pytest.raises(KeyError):
            reorder(grid_8x6, algorithm="amd")


class TestCompareOrderings:
    def test_default_algorithms(self, grid_8x6):
        result = compare_orderings(grid_8x6, problem="grid")
        assert {r.algorithm for r in result.rows} == {"spectral", "gk", "gps", "rcm"}

    def test_custom_algorithms(self, grid_8x6):
        result = compare_orderings(grid_8x6, algorithms=("rcm", "sloan"))
        assert {r.algorithm for r in result.rows} == {"rcm", "sloan"}


class TestPackageExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example(self):
        from repro import reorder as top_reorder
        from repro.collections import grid2d_pattern as gp

        report = top_reorder(gp(20, 30), algorithm="spectral")
        assert report.statistics.envelope_size <= report.original.envelope_size
