"""Unit tests for the fiedler_vector front end (repro.eigen.fiedler)."""

import numpy as np
import pytest

from repro.collections.generators import random_geometric_pattern
from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.eigen.fiedler import FIEDLER_METHODS, fiedler_vector
from repro.graph.laplacian import laplacian_matrix


def _dense_lambda2(pattern):
    return float(np.linalg.eigvalsh(laplacian_matrix(pattern).toarray())[1])


class TestFiedlerVectorMethods:
    @pytest.mark.parametrize("method", ["dense", "lanczos", "eigsh", "lobpcg", "multilevel"])
    def test_all_methods_agree_on_eigenvalue(self, method):
        pattern = grid2d_pattern(9, 8)
        result = fiedler_vector(pattern, method=method)
        assert result.eigenvalue == pytest.approx(_dense_lambda2(pattern), rel=1e-4)
        assert result.method == method

    @pytest.mark.parametrize("method", ["dense", "lanczos", "eigsh", "lobpcg", "multilevel"])
    def test_eigenvector_quality(self, method):
        pattern = random_geometric_pattern(130, seed=3)
        lap = laplacian_matrix(pattern)
        result = fiedler_vector(pattern, method=method)
        residual = np.linalg.norm(lap @ result.eigenvector - result.eigenvalue * result.eigenvector)
        assert residual < 1e-4

    def test_auto_small_uses_dense(self):
        result = fiedler_vector(path_pattern(20), method="auto")
        assert result.method == "dense"

    def test_auto_medium_uses_lanczos(self):
        result = fiedler_vector(grid2d_pattern(15, 10), method="auto")
        assert result.method == "lanczos"

    def test_auto_large_uses_multilevel(self):
        pattern = grid2d_pattern(70, 60)
        result = fiedler_vector(pattern, method="auto", coarsest_size=100)
        assert result.method == "multilevel"

    def test_unknown_method_rejected(self, path10):
        with pytest.raises(ValueError, match="method"):
            fiedler_vector(path10, method="does-not-exist")

    def test_methods_constant_is_complete(self):
        assert set(FIEDLER_METHODS) == {"auto", "dense", "lanczos", "multilevel", "eigsh", "lobpcg"}


class TestFiedlerVectorProperties:
    def test_sign_convention(self, grid_8x6):
        result = fiedler_vector(grid_8x6, method="dense")
        assert result.eigenvector[np.argmax(np.abs(result.eigenvector))] > 0

    def test_orthogonal_to_constant(self, geometric200):
        result = fiedler_vector(geometric200, method="lanczos")
        assert abs(result.eigenvector.sum()) < 1e-7

    def test_path_fiedler_vector_is_monotone(self):
        # The Fiedler vector of a path is cos(pi (i + 1/2) / n): strictly monotone.
        result = fiedler_vector(path_pattern(30), method="dense")
        diffs = np.diff(result.eigenvector)
        assert np.all(diffs > 0) or np.all(diffs < 0)

    def test_matches_networkx(self):
        import networkx as nx

        pattern = random_geometric_pattern(90, seed=5)
        graph = nx.Graph()
        graph.add_nodes_from(range(pattern.n))
        graph.add_edges_from(pattern.edges())
        expected = nx.algebraic_connectivity(graph, tol=1e-10, method="tracemin_lu")
        result = fiedler_vector(pattern, method="lanczos")
        assert result.eigenvalue == pytest.approx(expected, rel=1e-4)

    def test_disconnected_rejected_by_default(self, disconnected_pattern):
        with pytest.raises(ValueError, match="disconnected"):
            fiedler_vector(disconnected_pattern)

    def test_disconnected_allowed_when_requested(self, disconnected_pattern):
        result = fiedler_vector(disconnected_pattern, method="dense", check_connected=False)
        assert result.eigenvalue == pytest.approx(0.0, abs=1e-10)

    def test_accepts_scipy_matrix_input(self):
        pattern = grid2d_pattern(6, 6)
        result_pattern = fiedler_vector(pattern, method="dense")
        result_scipy = fiedler_vector(pattern.to_scipy("spd"), method="dense")
        assert result_pattern.eigenvalue == pytest.approx(result_scipy.eigenvalue)

    def test_single_vertex_rejected(self):
        from repro.sparse.pattern import SymmetricPattern

        with pytest.raises(ValueError):
            fiedler_vector(SymmetricPattern.empty(1))

    def test_fiedler_value_positive_for_connected(self, geometric200):
        result = fiedler_vector(geometric200, method="lanczos")
        assert result.eigenvalue > 0
