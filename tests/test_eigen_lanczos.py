"""Unit tests for the Lanczos eigensolver (repro.eigen.lanczos)."""

import numpy as np
import pytest

from repro.collections.generators import random_geometric_pattern
from repro.collections.meshes import cycle_pattern, grid2d_pattern, path_pattern
from repro.eigen.lanczos import deflate_constant, lanczos_smallest_nontrivial
from repro.graph.laplacian import laplacian_matrix


def _dense_lambda2(pattern):
    values = np.linalg.eigvalsh(laplacian_matrix(pattern).toarray())
    return float(values[1])


class TestDeflateConstant:
    def test_removes_mean(self):
        x = np.array([1.0, 2.0, 3.0])
        assert abs(deflate_constant(x).sum()) < 1e-14

    def test_idempotent(self):
        x = np.random.default_rng(0).standard_normal(20)
        once = deflate_constant(x)
        np.testing.assert_allclose(deflate_constant(once), once)


class TestLanczosSmallestNontrivial:
    @pytest.mark.parametrize("n", [5, 16, 37])
    def test_path_graph_eigenvalue(self, n):
        pattern = path_pattern(n)
        result = lanczos_smallest_nontrivial(laplacian_matrix(pattern), tol=1e-10)
        expected = 2.0 - 2.0 * np.cos(np.pi / n)
        assert result.converged
        assert result.eigenvalue == pytest.approx(expected, rel=1e-6)

    def test_cycle_graph_eigenvalue(self):
        n = 24
        result = lanczos_smallest_nontrivial(laplacian_matrix(cycle_pattern(n)), tol=1e-10)
        expected = 2.0 - 2.0 * np.cos(2.0 * np.pi / n)
        assert result.eigenvalue == pytest.approx(expected, rel=1e-6)

    def test_grid_matches_dense(self):
        pattern = grid2d_pattern(9, 7)
        result = lanczos_smallest_nontrivial(laplacian_matrix(pattern), tol=1e-10)
        assert result.eigenvalue == pytest.approx(_dense_lambda2(pattern), rel=1e-6)

    def test_geometric_graph_matches_dense(self):
        pattern = random_geometric_pattern(150, seed=2)
        result = lanczos_smallest_nontrivial(laplacian_matrix(pattern), tol=1e-9)
        assert result.eigenvalue == pytest.approx(_dense_lambda2(pattern), rel=1e-5)

    def test_eigenvector_residual(self, grid_8x6):
        lap = laplacian_matrix(grid_8x6)
        result = lanczos_smallest_nontrivial(lap, tol=1e-10)
        residual = np.linalg.norm(lap @ result.eigenvector - result.eigenvalue * result.eigenvector)
        assert residual < 1e-7
        assert result.residual_norm == pytest.approx(residual, rel=1e-6)

    def test_eigenvector_orthogonal_to_constant(self, grid_8x6):
        result = lanczos_smallest_nontrivial(laplacian_matrix(grid_8x6))
        assert abs(result.eigenvector.sum()) < 1e-8

    def test_eigenvector_unit_norm(self, grid_8x6):
        result = lanczos_smallest_nontrivial(laplacian_matrix(grid_8x6))
        assert np.linalg.norm(result.eigenvector) == pytest.approx(1.0, abs=1e-10)

    def test_good_start_vector_converges(self, grid_8x6):
        lap = laplacian_matrix(grid_8x6)
        exact = np.linalg.eigh(lap.toarray())[1][:, 1]
        result = lanczos_smallest_nontrivial(lap, start=exact, tol=1e-10)
        assert result.converged

    def test_deterministic_given_seed(self, grid_8x6):
        lap = laplacian_matrix(grid_8x6)
        a = lanczos_smallest_nontrivial(lap, rng=5)
        b = lanczos_smallest_nontrivial(lap, rng=5)
        assert a.eigenvalue == b.eigenvalue
        np.testing.assert_allclose(a.eigenvector, b.eigenvector)

    def test_dense_input_accepted(self, path10):
        lap = laplacian_matrix(path10).toarray()
        result = lanczos_smallest_nontrivial(lap, tol=1e-10)
        assert result.eigenvalue == pytest.approx(2.0 - 2.0 * np.cos(np.pi / 10), rel=1e-6)

    def test_too_small_matrix_rejected(self):
        with pytest.raises(ValueError):
            lanczos_smallest_nontrivial(np.zeros((1, 1)))

    def test_two_vertex_graph(self):
        pattern = path_pattern(2)
        result = lanczos_smallest_nontrivial(laplacian_matrix(pattern), tol=1e-12)
        assert result.eigenvalue == pytest.approx(2.0, rel=1e-8)

    def test_disconnected_graph_gives_zero(self, disconnected_pattern):
        # With two or more components, the smallest nontrivial eigenvalue of
        # the Laplacian restricted to 1-perp is 0 (another null vector exists).
        result = lanczos_smallest_nontrivial(
            laplacian_matrix(disconnected_pattern), tol=1e-8
        )
        assert result.eigenvalue == pytest.approx(0.0, abs=1e-6)
