"""Unit tests for the multilevel Fiedler solver (repro.eigen.multilevel)."""

import numpy as np
import pytest

from repro.collections.generators import airfoil_pattern, random_geometric_pattern
from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.eigen.multilevel import multilevel_fiedler
from repro.graph.laplacian import laplacian_matrix


def _dense_lambda2(pattern):
    return float(np.linalg.eigvalsh(laplacian_matrix(pattern).toarray())[1])


class TestMultilevelFiedler:
    def test_small_graph_no_contraction(self, grid_8x6):
        result = multilevel_fiedler(grid_8x6, coarsest_size=100)
        assert result.levels == 0
        assert result.eigenvalue == pytest.approx(_dense_lambda2(grid_8x6), rel=1e-5)

    def test_large_grid_uses_hierarchy(self):
        pattern = grid2d_pattern(20, 20)
        result = multilevel_fiedler(pattern, coarsest_size=50)
        assert result.levels >= 1
        assert result.level_sizes[0] == 400
        assert result.level_sizes[-1] <= result.level_sizes[0]
        assert result.eigenvalue == pytest.approx(_dense_lambda2(pattern), rel=1e-4)

    def test_airfoil_matches_dense(self):
        pattern = airfoil_pattern(350, seed=1)
        result = multilevel_fiedler(pattern, coarsest_size=60)
        assert result.converged
        assert result.eigenvalue == pytest.approx(_dense_lambda2(pattern), rel=1e-4)

    def test_geometric_graph_lands_in_low_cluster(self):
        # Random geometric graphs have tightly clustered low Laplacian
        # eigenvalues; the multilevel solver is only guaranteed to land in the
        # low cluster there (which is what the ordering application needs).
        pattern = random_geometric_pattern(300, seed=4)
        result = multilevel_fiedler(pattern, coarsest_size=40)
        values = np.linalg.eigvalsh(laplacian_matrix(pattern).toarray())
        assert values[1] - 1e-8 <= result.eigenvalue <= values[4] + 1e-8
        assert result.eigenvalue <= 2.0 * values[1]

    def test_residual_is_small(self):
        pattern = grid2d_pattern(18, 14)
        lap = laplacian_matrix(pattern)
        result = multilevel_fiedler(pattern, coarsest_size=40, tol=1e-9)
        residual = np.linalg.norm(lap @ result.eigenvector - result.eigenvalue * result.eigenvector)
        assert residual < 1e-6

    def test_vector_is_deflated_and_normalized(self):
        pattern = grid2d_pattern(15, 15)
        result = multilevel_fiedler(pattern, coarsest_size=30)
        assert abs(result.eigenvector.sum()) < 1e-6
        assert np.linalg.norm(result.eigenvector) == pytest.approx(1.0, abs=1e-8)

    def test_level_sizes_decreasing(self):
        pattern = random_geometric_pattern(350, seed=6)
        result = multilevel_fiedler(pattern, coarsest_size=40)
        sizes = result.level_sizes
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_refinement_iterations_counted(self):
        pattern = grid2d_pattern(20, 18)
        result = multilevel_fiedler(pattern, coarsest_size=40)
        if result.levels:
            assert result.refinement_iterations >= 0

    def test_deterministic_given_seed(self):
        pattern = random_geometric_pattern(250, seed=8)
        a = multilevel_fiedler(pattern, coarsest_size=50, rng=3)
        b = multilevel_fiedler(pattern, coarsest_size=50, rng=3)
        assert a.eigenvalue == pytest.approx(b.eigenvalue, rel=1e-12)

    def test_path_graph(self):
        pattern = path_pattern(150)
        result = multilevel_fiedler(pattern, coarsest_size=20)
        expected = 2.0 - 2.0 * np.cos(np.pi / 150)
        assert result.eigenvalue == pytest.approx(expected, rel=1e-3)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            multilevel_fiedler(path_pattern(1))

    def test_mis_strategy_option(self):
        pattern = grid2d_pattern(16, 16)
        result = multilevel_fiedler(pattern, coarsest_size=40, mis_strategy="random", rng=1)
        assert result.eigenvalue == pytest.approx(_dense_lambda2(pattern), rel=1e-3)
