"""Unit tests for Rayleigh Quotient Iteration (repro.eigen.rqi)."""

import numpy as np
import pytest

from repro.collections.generators import random_geometric_pattern
from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.eigen.rqi import rayleigh_quotient, rayleigh_quotient_iteration
from repro.graph.laplacian import laplacian_matrix


class TestRayleighQuotient:
    def test_eigenvector_gives_eigenvalue(self):
        a = np.diag([1.0, 2.0, 3.0])
        assert rayleigh_quotient(a, np.array([0.0, 1.0, 0.0])) == pytest.approx(2.0)

    def test_scaling_invariant(self, grid_8x6, rng):
        lap = laplacian_matrix(grid_8x6)
        x = rng.standard_normal(grid_8x6.n)
        assert rayleigh_quotient(lap, x) == pytest.approx(rayleigh_quotient(lap, 5.0 * x))

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            rayleigh_quotient(np.eye(3), np.zeros(3))

    def test_bounded_by_extreme_eigenvalues(self, geometric200, rng):
        lap = laplacian_matrix(geometric200)
        values = np.linalg.eigvalsh(lap.toarray())
        x = rng.standard_normal(geometric200.n)
        rho = rayleigh_quotient(lap, x)
        assert values[0] - 1e-9 <= rho <= values[-1] + 1e-9


class TestRQI:
    def test_refines_perturbed_fiedler_vector(self):
        pattern = grid2d_pattern(10, 8)
        lap = laplacian_matrix(pattern)
        values, vectors = np.linalg.eigh(lap.toarray())
        exact = vectors[:, 1]
        rng = np.random.default_rng(0)
        # Perturb by ~5% in norm so the Rayleigh quotient stays near lambda_2
        # (RQI converges to the eigenpair nearest its starting quotient).
        noise = rng.standard_normal(exact.size)
        noisy = exact + 0.05 * noise / np.linalg.norm(noise)
        result = rayleigh_quotient_iteration(lap, noisy, tol=1e-10)
        assert result.converged
        assert result.eigenvalue == pytest.approx(values[1], rel=1e-6)
        overlap = abs(np.dot(result.eigenvector, exact))
        assert overlap == pytest.approx(1.0, abs=1e-5)

    def test_cubic_convergence_few_iterations(self):
        pattern = random_geometric_pattern(120, seed=9)
        lap = laplacian_matrix(pattern)
        vectors = np.linalg.eigh(lap.toarray())[1]
        noisy = vectors[:, 1] + 0.01 * np.random.default_rng(1).standard_normal(pattern.n)
        result = rayleigh_quotient_iteration(lap, noisy, tol=1e-9)
        assert result.converged
        assert result.iterations <= 3  # "one or perhaps two iterations"

    def test_already_converged_returns_immediately(self, grid_8x6):
        lap = laplacian_matrix(grid_8x6)
        exact = np.linalg.eigh(lap.toarray())[1][:, 1]
        result = rayleigh_quotient_iteration(lap, exact, tol=1e-8)
        assert result.converged
        assert result.iterations == 0

    def test_output_is_deflated_and_normalized(self, grid_8x6, rng):
        lap = laplacian_matrix(grid_8x6)
        result = rayleigh_quotient_iteration(lap, rng.standard_normal(grid_8x6.n), max_iter=5)
        assert abs(result.eigenvector.sum()) < 1e-8
        assert np.linalg.norm(result.eigenvector) == pytest.approx(1.0, abs=1e-10)

    def test_constant_start_rejected(self, path10):
        lap = laplacian_matrix(path10)
        with pytest.raises(ValueError):
            rayleigh_quotient_iteration(lap, np.ones(10))

    def test_shape_mismatch_rejected(self, path10):
        with pytest.raises(ValueError):
            rayleigh_quotient_iteration(laplacian_matrix(path10), np.ones(4))

    def test_dense_matrix_supported(self):
        pattern = path_pattern(12)
        lap = laplacian_matrix(pattern).toarray()
        vectors = np.linalg.eigh(lap)[1]
        noisy = vectors[:, 1] + 0.05 * np.random.default_rng(2).standard_normal(12)
        result = rayleigh_quotient_iteration(lap, noisy, tol=1e-9)
        assert result.converged

    def test_improves_residual_from_random_start(self, geometric200, rng):
        # From a random start RQI heads for *an* eigenpair, not necessarily
        # the Fiedler pair; it must at least improve the eigen-residual.
        lap = laplacian_matrix(geometric200)
        x0 = rng.standard_normal(geometric200.n)
        x0 -= x0.mean()
        x0 /= np.linalg.norm(x0)
        rho0 = rayleigh_quotient(lap, x0)
        initial_residual = np.linalg.norm(lap @ x0 - rho0 * x0)
        result = rayleigh_quotient_iteration(lap, x0, max_iter=15)
        assert result.residual_norm < initial_residual
