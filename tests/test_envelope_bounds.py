"""Unit and property tests for the Theorem 2.1 / 2.2 bounds (repro.envelope.bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.collections.generators import airfoil_pattern, random_geometric_pattern
from repro.collections.meshes import complete_pattern, grid2d_pattern, path_pattern
from repro.envelope.bounds import (
    envelope_size_bounds,
    envelope_work_bounds,
    theorem_2_1_relations,
    two_sum_lower_bound,
)
from repro.envelope.metrics import envelope_size, envelope_work
from repro.envelope.sums import two_sum
from repro.graph.laplacian import laplacian_matrix
from repro.orderings.registry import ORDERING_ALGORITHMS
from tests.conftest import small_connected_patterns, small_patterns


def _lambda_extremes_dense(pattern):
    values = np.linalg.eigvalsh(laplacian_matrix(pattern).toarray())
    return float(values[1]), float(values[-1])


class TestTheorem21Relations:
    def test_holds_on_grid_natural_order(self, grid_12x9):
        relations = theorem_2_1_relations(grid_12x9)
        assert relations.all_hold

    def test_holds_under_random_permutations(self, geometric200, rng):
        for _ in range(5):
            perm = rng.permutation(geometric200.n)
            assert theorem_2_1_relations(geometric200, perm).all_hold

    def test_values_match_metric_functions(self, grid_8x6, rng):
        perm = rng.permutation(grid_8x6.n)
        relations = theorem_2_1_relations(grid_8x6, perm)
        assert relations.envelope_size == envelope_size(grid_8x6, perm)
        assert relations.envelope_work == envelope_work(grid_8x6, perm)
        assert relations.two_sum == two_sum(grid_8x6, perm)
        assert relations.max_degree == grid_8x6.max_degree()

    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_property_chain_always_holds(self, pattern):
        rng = np.random.default_rng(0)
        perm = rng.permutation(pattern.n)
        assert theorem_2_1_relations(pattern, perm).all_hold


class TestTwoSumLowerBound:
    def test_path_bound_below_natural_value(self, path10):
        lambda2, _ = _lambda_extremes_dense(path10)
        bound = two_sum_lower_bound(path10, lambda2=lambda2)
        assert bound <= two_sum(path10) + 1e-9

    def test_bound_below_every_ordering(self, geometric200, rng):
        lambda2, _ = _lambda_extremes_dense(geometric200)
        bound = two_sum_lower_bound(geometric200, lambda2=lambda2)
        for _ in range(5):
            perm = rng.permutation(geometric200.n)
            assert bound <= two_sum(geometric200, perm) + 1e-6

    def test_reasonably_tight_on_airfoil_spectral_ordering(self):
        """The paper: "These bounds appear to be reasonably tight"."""
        from repro.orderings.spectral import spectral_ordering

        pattern = airfoil_pattern(350, seed=3)
        lambda2, _ = _lambda_extremes_dense(pattern)
        bound = two_sum_lower_bound(pattern, lambda2=lambda2)
        achieved = two_sum(pattern, spectral_ordering(pattern, method="lanczos").perm)
        assert bound <= achieved
        assert achieved <= 60 * bound  # same order of magnitude

    def test_trivial_sizes(self):
        assert two_sum_lower_bound(path_pattern(1)) == 0.0

    @given(small_connected_patterns(min_n=3))
    @settings(max_examples=20, deadline=None)
    def test_property_bound_below_identity_two_sum(self, pattern):
        lambda2, _ = _lambda_extremes_dense(pattern)
        bound = two_sum_lower_bound(pattern, lambda2=lambda2)
        assert bound <= two_sum(pattern) + 1e-6


class TestEnvelopeBounds:
    def test_work_bounds_bracket_computed_orderings(self, geometric200):
        lambda2, lambda_max = _lambda_extremes_dense(geometric200)
        lower, upper = envelope_work_bounds(geometric200, lambda2, lambda_max)
        assert 0 <= lower <= upper
        for name in ("rcm", "gps", "spectral"):
            ework = envelope_work(geometric200, ORDERING_ALGORITHMS[name](geometric200).perm)
            assert lower <= ework + 1e-6

    def test_size_bounds_bracket_computed_orderings(self, geometric200):
        lambda2, lambda_max = _lambda_extremes_dense(geometric200)
        lower, upper = envelope_size_bounds(geometric200, lambda2, lambda_max)
        assert 0 <= lower <= upper
        for name in ("rcm", "gps", "spectral"):
            esize = envelope_size(geometric200, ORDERING_ALGORITHMS[name](geometric200).perm)
            assert lower <= esize + 1e-6

    def test_complete_graph_bounds(self, k6):
        lambda2, lambda_max = _lambda_extremes_dense(k6)
        lower, upper = envelope_work_bounds(k6, lambda2, lambda_max)
        # for K_n every ordering has the same envelope work
        work = envelope_work(k6)
        assert lower <= work <= upper + 1e-9

    def test_small_sizes_return_zero(self):
        assert envelope_size_bounds(path_pattern(1)) == (0.0, 0.0)
        assert envelope_work_bounds(path_pattern(1)) == (0.0, 0.0)

    def test_bounds_computed_without_supplied_eigenvalues(self):
        pattern = grid2d_pattern(6, 5)
        lower, upper = envelope_work_bounds(pattern)
        assert 0 < lower < upper

    @given(small_connected_patterns(min_n=3))
    @settings(max_examples=20, deadline=None)
    def test_property_lower_bounds_valid(self, pattern):
        lambda2, lambda_max = _lambda_extremes_dense(pattern)
        work_lower, _ = envelope_work_bounds(pattern, lambda2, lambda_max)
        size_lower, _ = envelope_size_bounds(pattern, lambda2, lambda_max)
        rng = np.random.default_rng(4)
        perm = rng.permutation(pattern.n)
        assert work_lower <= envelope_work(pattern, perm) + 1e-6
        assert size_lower <= envelope_size(pattern, perm) + 1e-6
