"""Unit and property tests for the envelope parameters (repro.envelope.metrics)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.collections.meshes import (
    complete_pattern,
    grid2d_pattern,
    path_pattern,
    star_pattern,
)
from repro.envelope.metrics import (
    bandwidth,
    envelope_size,
    envelope_statistics,
    envelope_work,
    first_nonzero_columns,
    frontwidths,
    row_widths,
)
from repro.sparse.pattern import SymmetricPattern
from tests.conftest import small_patterns


def _reference_metrics(pattern, perm=None):
    """Brute-force envelope parameters from the dense permuted structure."""
    dense = pattern.to_dense_pattern()
    if perm is not None:
        perm = np.asarray(perm)
        dense = dense[np.ix_(perm, perm)]
    n = dense.shape[0]
    widths = np.zeros(n, dtype=int)
    for i in range(n):
        nz = np.flatnonzero(dense[i, : i + 1])
        widths[i] = i - nz[0] if nz.size else 0
    return widths


class TestRowWidthsAndFirsts:
    def test_path_natural_order(self, path10):
        widths = row_widths(path10)
        np.testing.assert_array_equal(widths, [0] + [1] * 9)
        firsts = first_nonzero_columns(path10)
        np.testing.assert_array_equal(firsts, [0] + list(range(9)))

    def test_diagonal_matrix_zero_widths(self):
        p = SymmetricPattern.empty(6)
        np.testing.assert_array_equal(row_widths(p), np.zeros(6, dtype=int))

    def test_star_natural_order(self, star9):
        # centre is vertex 0; every leaf row i has its first nonzero in column 0
        widths = row_widths(star9)
        np.testing.assert_array_equal(widths, np.arange(9))

    def test_matches_bruteforce_with_permutation(self, grid_8x6, rng):
        perm = rng.permutation(grid_8x6.n)
        np.testing.assert_array_equal(
            row_widths(grid_8x6, perm), _reference_metrics(grid_8x6, perm)
        )

    def test_first_nonzero_at_most_row_index(self, geometric200, rng):
        perm = rng.permutation(geometric200.n)
        firsts = first_nonzero_columns(geometric200, perm)
        assert np.all(firsts <= np.arange(geometric200.n))


class TestScalarMetrics:
    def test_path_values(self, path10):
        assert envelope_size(path10) == 9
        assert envelope_work(path10) == 9
        assert bandwidth(path10) == 1

    def test_complete_graph_any_order_same(self, k6):
        expected = sum(range(6))  # 0+1+2+3+4+5
        assert envelope_size(k6) == expected
        perm = np.array([3, 5, 0, 2, 4, 1])
        assert envelope_size(k6, perm) == expected

    def test_star_center_first_vs_center_last(self, star9):
        # centre first (natural): row i has width i -> Esize = 36
        assert envelope_size(star9) == 36
        # centre last: every earlier row is a lone diagonal, centre row spans all
        centre_last = np.array(list(range(1, 9)) + [0])
        assert envelope_size(star9, centre_last) == 8
        assert bandwidth(star9, centre_last) == 8

    def test_grid_natural_bandwidth(self):
        grid = grid2d_pattern(7, 4)  # index = i*4 + j; neighbours differ by 4 or 1
        assert bandwidth(grid) == 4

    def test_envelope_size_not_reversal_invariant_in_general(self, star9):
        # Reversing an ordering does NOT preserve the envelope size in general
        # (that is why RCM reverses CM): the star graph is the classic example.
        centre_last = np.array(list(range(1, 9)) + [0])
        assert envelope_size(star9, centre_last) == 8
        assert envelope_size(star9, centre_last[::-1]) == 36

    def test_bandwidth_reversal_invariance(self, geometric200, rng):
        perm = rng.permutation(geometric200.n)
        assert bandwidth(geometric200, perm) == bandwidth(geometric200, perm[::-1])

    def test_envelope_work_ge_envelope_size(self, geometric200):
        assert envelope_work(geometric200) >= envelope_size(geometric200)


class TestFrontwidths:
    def test_sum_equals_envelope_size(self, grid_12x9, rng):
        perm = rng.permutation(grid_12x9.n)
        fronts = frontwidths(grid_12x9, perm)
        assert fronts.sum() == envelope_size(grid_12x9, perm)

    def test_path_fronts_are_one(self, path10):
        fronts = frontwidths(path10)
        np.testing.assert_array_equal(fronts, [1] * 9 + [0])

    def test_last_front_is_zero(self, geometric200):
        assert frontwidths(geometric200)[-1] == 0

    def test_matches_bruteforce(self, grid_8x6, rng):
        perm = rng.permutation(grid_8x6.n)
        positions = np.empty(grid_8x6.n, dtype=int)
        positions[perm] = np.arange(grid_8x6.n)
        fronts = frontwidths(grid_8x6, perm)
        for j in (1, 5, 17, grid_8x6.n):
            v_j = set(perm[:j].tolist())
            adj = {
                int(w)
                for v in v_j
                for w in grid_8x6.neighbors(v)
                if int(w) not in v_j
            }
            assert fronts[j - 1] == len(adj)


class TestEnvelopeStatistics:
    def test_bundle_consistent_with_scalars(self, geometric200, rng):
        perm = rng.permutation(geometric200.n)
        stats = envelope_statistics(geometric200, perm)
        assert stats.envelope_size == envelope_size(geometric200, perm)
        assert stats.envelope_work == envelope_work(geometric200, perm)
        assert stats.bandwidth == bandwidth(geometric200, perm)
        assert stats.n == geometric200.n
        assert stats.nnz == geometric200.nnz
        assert stats.max_frontwidth == int(frontwidths(geometric200, perm).max())

    def test_as_dict_round_trip(self, path10):
        d = envelope_statistics(path10).as_dict()
        assert d["envelope_size"] == 9
        assert set(d) >= {"n", "nnz", "bandwidth", "envelope_size", "envelope_work"}


class TestMetricProperties:
    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_row_widths_match_bruteforce(self, pattern):
        rng = np.random.default_rng(0)
        perm = rng.permutation(pattern.n)
        np.testing.assert_array_equal(
            row_widths(pattern, perm), _reference_metrics(pattern, perm)
        )

    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_frontwidth_identity(self, pattern):
        rng = np.random.default_rng(1)
        perm = rng.permutation(pattern.n)
        assert frontwidths(pattern, perm).sum() == envelope_size(pattern, perm)

    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_bandwidth_le_envelope_le_work_plus(self, pattern):
        esize = envelope_size(pattern)
        assert bandwidth(pattern) <= esize
        assert esize <= envelope_work(pattern) + pattern.n  # r_i <= r_i^2 except r_i in {0,1}
