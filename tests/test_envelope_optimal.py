"""Unit tests for the exact tiny-case optima (repro.envelope.optimal)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings

from repro.collections.meshes import (
    complete_pattern,
    cycle_pattern,
    path_pattern,
    star_pattern,
)
from repro.envelope.bounds import envelope_size_bounds
from repro.envelope.metrics import bandwidth, envelope_size
from repro.envelope.optimal import minimum_bandwidth, minimum_envelope_size
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.sparse.pattern import SymmetricPattern
from tests.conftest import small_connected_patterns


def _brute_force_minimum(pattern, metric):
    best = None
    for perm in itertools.permutations(range(pattern.n)):
        value = metric(pattern, np.asarray(perm))
        best = value if best is None else min(best, value)
    return best


class TestExactOptima:
    def test_path_minimum_envelope(self):
        result = minimum_envelope_size(path_pattern(7))
        assert result.value == 6
        assert envelope_size(path_pattern(7), result.perm) == 6

    def test_cycle_minimum_envelope(self):
        # C_n: the best ordering walks around the cycle; Esize = 2(n-1) - 1... verify by brute force
        pattern = cycle_pattern(6)
        expected = _brute_force_minimum(pattern, envelope_size)
        assert minimum_envelope_size(pattern).value == expected

    def test_star_minimum_envelope(self):
        # star S_n: best puts the centre in the middle; verify by brute force for n=6
        pattern = star_pattern(6)
        expected = _brute_force_minimum(pattern, envelope_size)
        result = minimum_envelope_size(pattern)
        assert result.value == expected

    def test_complete_graph_any_order(self):
        pattern = complete_pattern(5)
        assert minimum_envelope_size(pattern).value == sum(range(5))

    def test_path_minimum_bandwidth(self):
        assert minimum_bandwidth(path_pattern(8)).value == 1

    def test_cycle_minimum_bandwidth(self):
        assert minimum_bandwidth(cycle_pattern(7)).value == 2

    def test_returned_perm_attains_value(self):
        pattern = cycle_pattern(7)
        result = minimum_bandwidth(pattern)
        assert bandwidth(pattern, result.perm) == result.value

    def test_size_limit_enforced(self):
        with pytest.raises(ValueError, match="exact search"):
            minimum_envelope_size(path_pattern(20))

    def test_empty_graph(self):
        result = minimum_envelope_size(SymmetricPattern.empty(4))
        assert result.value == 0


class TestHeuristicsAgainstOptimum:
    @given(small_connected_patterns(min_n=3, max_n=8))
    @settings(max_examples=20, deadline=None)
    def test_heuristics_never_beat_the_optimum(self, pattern):
        optimum = minimum_envelope_size(pattern).value
        for name in ("spectral", "rcm", "gps", "gk", "sloan"):
            ordering = ORDERING_ALGORITHMS[name](pattern)
            assert envelope_size(pattern, ordering.perm) >= optimum

    @given(small_connected_patterns(min_n=3, max_n=8))
    @settings(max_examples=20, deadline=None)
    def test_spectral_lower_bound_below_optimum(self, pattern):
        optimum = minimum_envelope_size(pattern).value
        lower, upper = envelope_size_bounds(pattern)
        assert lower <= optimum + 1e-6
        assert optimum <= upper + 1e-6

    @given(small_connected_patterns(min_n=3, max_n=7))
    @settings(max_examples=15, deadline=None)
    def test_exact_matches_brute_force(self, pattern):
        assert minimum_envelope_size(pattern).value == _brute_force_minimum(
            pattern, envelope_size
        )

    @given(small_connected_patterns(min_n=3, max_n=7))
    @settings(max_examples=10, deadline=None)
    def test_exact_bandwidth_matches_brute_force(self, pattern):
        assert minimum_bandwidth(pattern).value == _brute_force_minimum(pattern, bandwidth)
