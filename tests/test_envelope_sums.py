"""Unit tests for the 1-sum / 2-sum / p-sums (repro.envelope.sums)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.collections.meshes import complete_pattern, path_pattern, star_pattern
from repro.envelope.metrics import bandwidth
from repro.envelope.sums import one_sum, p_sum, two_sum
from repro.envelope.theory import permutation_vector_from_ordering
from repro.graph.laplacian import laplacian_quadratic_form
from tests.conftest import small_patterns


class TestOneSum:
    def test_path_natural(self, path10):
        assert one_sum(path10) == 9  # each edge contributes |i - (i+1)| = 1

    def test_star_natural(self, star9):
        assert one_sum(star9) == sum(range(1, 9))

    def test_complete_graph(self, k6):
        expected = sum(j - i for i in range(6) for j in range(i + 1, 6))
        assert one_sum(k6) == expected

    def test_permutation_changes_value(self, star9):
        centre_last = np.array(list(range(1, 9)) + [0])
        assert one_sum(star9, centre_last) == sum(range(1, 9))
        centre_middle = np.array([1, 2, 3, 4, 0, 5, 6, 7, 8])
        assert one_sum(star9, centre_middle) == sum(range(1, 5)) + sum(range(1, 5))


class TestTwoSum:
    def test_path_natural(self, path10):
        assert two_sum(path10) == 9

    def test_relation_to_laplacian_quadratic_form(self, geometric200, rng):
        # For odd n the centered permutation vector reproduces the 2-sum
        # exactly; for even n (where the paper's value set skips zero) the
        # quadratic form can only be larger.
        perm = rng.permutation(geometric200.n)
        p_vec = permutation_vector_from_ordering(perm)
        quad = laplacian_quadratic_form(geometric200, p_vec)
        if geometric200.n % 2 == 1:
            assert two_sum(geometric200, perm) == pytest.approx(quad)
        else:
            assert quad >= two_sum(geometric200, perm) - 1e-9

    def test_equals_quadratic_form_for_odd_n(self, rng):
        pattern = path_pattern(31)
        perm = rng.permutation(31)
        p_vec = permutation_vector_from_ordering(perm)
        assert two_sum(pattern, perm) == pytest.approx(
            laplacian_quadratic_form(pattern, p_vec)
        )

    def test_greater_equal_one_sum(self, geometric200, rng):
        # every per-edge difference is >= 1, so squaring can only increase it
        perm = rng.permutation(geometric200.n)
        assert two_sum(geometric200, perm) >= one_sum(geometric200, perm)


class TestPSum:
    def test_p1_matches_one_sum(self, geometric200):
        assert p_sum(geometric200, 1.0) == pytest.approx(one_sum(geometric200))

    def test_p2_matches_two_sum(self, geometric200):
        assert p_sum(geometric200, 2.0) == pytest.approx(two_sum(geometric200))

    def test_p_inf_matches_bandwidth(self, geometric200, rng):
        perm = rng.permutation(geometric200.n)
        assert p_sum(geometric200, np.inf, perm) == bandwidth(geometric200, perm)

    def test_empty_graph(self):
        from repro.sparse.pattern import SymmetricPattern

        assert p_sum(SymmetricPattern.empty(3), 2.0) == 0.0

    def test_invalid_p(self, path10):
        with pytest.raises(ValueError):
            p_sum(path10, 0.0)


class TestSumProperties:
    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_two_sum_vs_quadratic_form(self, pattern):
        rng = np.random.default_rng(2)
        perm = rng.permutation(pattern.n)
        p_vec = permutation_vector_from_ordering(perm)
        quad = laplacian_quadratic_form(pattern, p_vec)
        if pattern.n % 2 == 1:
            assert two_sum(pattern, perm) == pytest.approx(quad)
        else:
            assert quad >= two_sum(pattern, perm) - 1e-9

    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_sums_nonnegative_and_ordered(self, pattern):
        s1 = one_sum(pattern)
        s2 = two_sum(pattern)
        assert 0 <= s1 <= s2
