"""Unit tests for Section 2.3/2.4 theory (repro.envelope.theory)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collections.meshes import grid2d_pattern, path_pattern, star_pattern
from repro.eigen.fiedler import fiedler_vector
from repro.envelope.theory import (
    adjacency_ordering_violations,
    centered_permutation_values,
    closest_permutation_vector,
    is_adjacency_ordering,
    permutation_vector_from_ordering,
    spectral_adjacency_violations,
)
from repro.orderings.cuthill_mckee import cuthill_mckee_ordering, rcm_ordering
from repro.orderings.spectral import spectral_ordering


class TestCenteredPermutationValues:
    def test_odd_n(self):
        np.testing.assert_array_equal(centered_permutation_values(5), [-2, -1, 0, 1, 2])

    def test_even_n(self):
        np.testing.assert_array_equal(centered_permutation_values(4), [-2, -1, 1, 2])

    def test_sum_is_zero(self):
        for n in range(1, 12):
            assert centered_permutation_values(n).sum() == pytest.approx(0.0)

    def test_norm_formula(self):
        for n in range(2, 12):
            values = centered_permutation_values(n)
            if n % 2 == 1:
                expected = n * (n * n - 1) / 12.0
            else:
                expected = n * (n + 1) * (n + 2) / 12.0
            assert np.dot(values, values) == pytest.approx(expected)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            centered_permutation_values(0)


class TestPermutationVectorFromOrdering:
    def test_orthogonal_to_ones(self):
        p = permutation_vector_from_ordering([2, 0, 1, 3, 4])
        assert p.sum() == pytest.approx(0.0)

    def test_order_reflected(self):
        perm = np.array([2, 0, 1])
        p = permutation_vector_from_ordering(perm)
        # vertex 2 is first (value -1), vertex 0 second (0), vertex 1 last (+1)
        np.testing.assert_array_equal(p, [0.0, 1.0, -1.0])


class TestClosestPermutationVector:
    def test_preserves_order_of_input(self):
        x = np.array([0.5, -0.2, 0.1, 2.0])
        p = closest_permutation_vector(x)
        assert np.array_equal(np.argsort(p), np.argsort(x))

    def test_theorem_2_3_optimality_small(self):
        """Exhaustively verify the closest-vector property (Theorem 2.3) for small n."""
        rng = np.random.default_rng(0)
        for n in (2, 3, 4, 5):
            values = centered_permutation_values(n)
            for _ in range(10):
                x = rng.standard_normal(n)
                best = closest_permutation_vector(x)
                best_dist = np.linalg.norm(best - x)
                for assignment in itertools.permutations(values):
                    dist = np.linalg.norm(np.asarray(assignment) - x)
                    assert best_dist <= dist + 1e-12

    def test_empty_input(self):
        assert closest_permutation_vector([]).size == 0

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            closest_permutation_vector(np.zeros((2, 2)))

    def test_matches_spectral_ordering_positions(self, grid_8x6):
        result = fiedler_vector(grid_8x6, method="dense")
        closest = closest_permutation_vector(result.eigenvector)
        ordering = spectral_ordering(grid_8x6, method="dense")
        # when the winning direction is nondecreasing and there are no ties,
        # the spectral ordering sorts exactly like the closest permutation vector
        if ordering.metadata["direction"] == "nondecreasing":
            vec = result.eigenvector
            if np.unique(vec).size == vec.size:
                np.testing.assert_array_equal(np.argsort(closest), np.argsort(vec))


class TestAdjacencyOrderings:
    def test_path_natural_is_adjacency(self, path10):
        assert is_adjacency_ordering(path10)

    def test_path_interleaved_is_not(self, path10):
        perm = np.array([0, 2, 4, 6, 8, 1, 3, 5, 7, 9])
        assert not is_adjacency_ordering(path10, perm)

    def test_cm_is_adjacency_rcm_is_not(self, star9, grid_12x9):
        """Section 2.4: 'The Cuthill-McKee ordering is an adjacency ordering,
        but RCM is not an adjacency ordering.'  (RCM can coincidentally be one
        on very symmetric graphs, so the negative half uses the star graph.)"""
        assert is_adjacency_ordering(grid_12x9, cuthill_mckee_ordering(grid_12x9).perm)
        assert is_adjacency_ordering(star9, cuthill_mckee_ordering(star9).perm)
        assert not is_adjacency_ordering(star9, rcm_ordering(star9).perm)

    def test_violations_positions(self, path10):
        perm = np.array([0, 5, 1, 2, 3, 4, 6, 7, 8, 9])
        violations = adjacency_ordering_violations(path10, perm)
        assert 1 in violations.tolist()  # vertex 5 placed second has no numbered neighbour

    def test_star_any_order_starting_center_is_adjacency(self, star9):
        assert is_adjacency_ordering(star9, np.arange(9))

    def test_disconnected_never_adjacency(self, disconnected_pattern):
        assert not is_adjacency_ordering(disconnected_pattern, np.arange(17))


class TestSpectralAdjacencyProperty:
    def test_theorem_2_5_one_sided_property(self, geometric200):
        """Theorem 2.5 consequence: adding positive-entry vertices in increasing
        order after N and Z gives vertices adjacent to the numbered set (exact
        when the eigenvector has no ties, which a generic irregular graph has)."""
        result = fiedler_vector(geometric200, method="dense")
        ordering = spectral_ordering(geometric200, method="dense")
        report = spectral_adjacency_violations(geometric200, result.eigenvector, ordering.perm)
        assert report["total_checked"] > 0
        assert report["positive_side"] == 0
        assert report["negative_side"] == 0

    def test_on_path(self, path10):
        result = fiedler_vector(path10, method="dense")
        ordering = spectral_ordering(path10, method="dense")
        report = spectral_adjacency_violations(path10, result.eigenvector, ordering.perm)
        assert report["positive_side"] == 0
        assert report["negative_side"] == 0
