"""Unit tests for the envelope Cholesky factorization (repro.factor.cholesky)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.collections.generators import random_geometric_pattern
from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.envelope.metrics import row_widths
from repro.factor.cholesky import envelope_cholesky, estimate_factor_work
from repro.factor.storage import EnvelopeStorage
from repro.orderings.cuthill_mckee import rcm_ordering
from repro.orderings.spectral import spectral_ordering


def _spd_from_pattern(pattern):
    return pattern.to_scipy("spd")


class TestEnvelopeCholesky:
    def test_tridiagonal_exact(self):
        n = 8
        main = 2.0 * np.ones(n)
        off = -1.0 * np.ones(n - 1)
        a = sp.diags([off, main, off], [-1, 0, 1], format="csr")
        chol = envelope_cholesky(a)
        l_dense = np.tril(chol.factor.to_dense(symmetric=False))
        np.testing.assert_allclose(l_dense @ l_dense.T, a.toarray(), atol=1e-12)

    def test_matches_numpy_cholesky(self, spd_grid_matrix):
        chol = envelope_cholesky(spd_grid_matrix)
        expected = np.linalg.cholesky(spd_grid_matrix.toarray())
        got = np.tril(chol.factor.to_dense(symmetric=False))
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_factor_stays_inside_envelope(self, grid_8x6, spd_grid_matrix):
        """No fill outside the envelope (George & Liu Thm 4.1.1)."""
        chol = envelope_cholesky(spd_grid_matrix)
        np.testing.assert_array_equal(
            chol.factor.first, EnvelopeStorage.from_matrix(spd_grid_matrix).first
        )

    def test_solve_recovers_solution(self, spd_grid_matrix, rng):
        x_true = rng.standard_normal(spd_grid_matrix.shape[0])
        b = spd_grid_matrix @ x_true
        chol = envelope_cholesky(spd_grid_matrix)
        np.testing.assert_allclose(chol.solve(b), x_true, atol=1e-8)

    def test_forward_backward_consistency(self, spd_grid_matrix, rng):
        chol = envelope_cholesky(spd_grid_matrix)
        b = rng.standard_normal(spd_grid_matrix.shape[0])
        y = chol.forward_substitution(b)
        x = chol.backward_substitution(y)
        np.testing.assert_allclose(spd_grid_matrix @ x, b, atol=1e-8)

    def test_log_determinant(self, spd_grid_matrix):
        chol = envelope_cholesky(spd_grid_matrix)
        sign, expected = np.linalg.slogdet(spd_grid_matrix.toarray())
        assert sign > 0
        assert chol.log_determinant() == pytest.approx(expected, rel=1e-10)

    def test_permutation_argument(self, grid_8x6, spd_grid_matrix, rng):
        ordering = rcm_ordering(grid_8x6)
        chol = envelope_cholesky(spd_grid_matrix, perm=ordering.perm)
        x_true = rng.standard_normal(grid_8x6.n)
        permuted = spd_grid_matrix[ordering.perm][:, ordering.perm]
        b = permuted @ x_true
        np.testing.assert_allclose(chol.solve(b), x_true, atol=1e-8)

    def test_not_positive_definite_raises(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 1.0]]))  # indefinite
        with pytest.raises(np.linalg.LinAlgError):
            envelope_cholesky(a)

    def test_check_false_does_not_raise(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 1.0]]))
        chol = envelope_cholesky(a, check=False)
        assert np.isfinite(chol.factor.values).all()

    def test_operation_count_positive_and_consistent(self, grid_8x6, spd_grid_matrix):
        chol = envelope_cholesky(spd_grid_matrix)
        widths = row_widths(grid_8x6).astype(float)
        upper_bound = 0.5 * np.sum(widths * (widths + 3.0)) + grid_8x6.n
        assert 0 < chol.operations <= upper_bound + 1e-9

    def test_operations_grow_with_envelope(self):
        """The quadratic cost law behind Table 4.4: more envelope, more work."""
        pattern = random_geometric_pattern(150, seed=12)
        matrix = _spd_from_pattern(pattern)
        good = spectral_ordering(pattern, method="lanczos")
        from repro.orderings.base import random_ordering

        bad = random_ordering(pattern.n, rng=0)
        ops_good = envelope_cholesky(matrix, perm=good.perm).operations
        ops_bad = envelope_cholesky(matrix, perm=bad.perm).operations
        assert ops_good < ops_bad

    def test_accepts_existing_storage(self, spd_grid_matrix):
        storage = EnvelopeStorage.from_matrix(spd_grid_matrix)
        chol = envelope_cholesky(storage)
        # input storage must not be clobbered
        np.testing.assert_allclose(storage.to_dense(), spd_grid_matrix.toarray())
        assert chol.n == storage.n

    def test_rhs_shape_validation(self, spd_grid_matrix):
        chol = envelope_cholesky(spd_grid_matrix)
        with pytest.raises(ValueError):
            chol.solve(np.ones(3))


class TestEstimateFactorWork:
    def test_formula(self, grid_8x6):
        widths = row_widths(grid_8x6).astype(float)
        expected = 0.5 * np.sum(widths * (widths + 3.0))
        assert estimate_factor_work(grid_8x6) == pytest.approx(expected)

    def test_ordering_dependence(self, geometric200):
        natural = estimate_factor_work(geometric200)
        rcm = estimate_factor_work(geometric200, rcm_ordering(geometric200).perm)
        assert rcm < natural
