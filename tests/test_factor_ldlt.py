"""Unit tests for the envelope LDL^T factorization (repro.factor.ldlt)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.collections.meshes import grid2d_pattern
from repro.factor.cholesky import envelope_cholesky
from repro.factor.ldlt import envelope_ldlt
from repro.factor.storage import EnvelopeStorage
from repro.orderings.cuthill_mckee import rcm_ordering


def _indefinite_matrix():
    """A symmetric indefinite matrix whose leading minors are nonsingular."""
    dense = np.array(
        [
            [4.0, 1.0, 0.0, 0.0],
            [1.0, -3.0, 2.0, 0.0],
            [0.0, 2.0, 5.0, 1.0],
            [0.0, 0.0, 1.0, -2.0],
        ]
    )
    return sp.csr_matrix(dense)


class TestEnvelopeLDLT:
    def test_reconstructs_spd_matrix(self, spd_grid_matrix):
        ldlt = envelope_ldlt(spd_grid_matrix)
        l_dense = np.tril(ldlt.factor.to_dense(symmetric=False), -1) + np.eye(ldlt.n)
        reconstructed = l_dense @ np.diag(ldlt.d) @ l_dense.T
        np.testing.assert_allclose(reconstructed, spd_grid_matrix.toarray(), atol=1e-9)

    def test_agrees_with_cholesky_on_spd(self, spd_grid_matrix):
        ldlt = envelope_ldlt(spd_grid_matrix)
        chol = envelope_cholesky(spd_grid_matrix)
        # D must equal the squared Cholesky diagonal.
        np.testing.assert_allclose(ldlt.d, chol.diagonal() ** 2, rtol=1e-10)

    def test_solve_spd(self, spd_grid_matrix, rng):
        x_true = rng.standard_normal(spd_grid_matrix.shape[0])
        b = spd_grid_matrix @ x_true
        ldlt = envelope_ldlt(spd_grid_matrix)
        np.testing.assert_allclose(ldlt.solve(b), x_true, atol=1e-8)

    def test_indefinite_matrix_factors_and_solves(self, rng):
        a = _indefinite_matrix()
        ldlt = envelope_ldlt(a)
        x_true = rng.standard_normal(4)
        np.testing.assert_allclose(ldlt.solve(a @ x_true), x_true, atol=1e-10)

    def test_inertia_matches_eigenvalues(self):
        a = _indefinite_matrix()
        ldlt = envelope_ldlt(a)
        eigenvalues = np.linalg.eigvalsh(a.toarray())
        positive, negative, zero = ldlt.inertia
        assert positive == int(np.sum(eigenvalues > 0))
        assert negative == int(np.sum(eigenvalues < 0))
        assert zero == 0

    def test_log_abs_determinant(self):
        a = _indefinite_matrix()
        ldlt = envelope_ldlt(a)
        _, logdet = np.linalg.slogdet(a.toarray())
        assert ldlt.log_abs_determinant() == pytest.approx(logdet, rel=1e-10)

    def test_with_permutation(self, grid_8x6, spd_grid_matrix, rng):
        ordering = rcm_ordering(grid_8x6)
        ldlt = envelope_ldlt(spd_grid_matrix, perm=ordering.perm)
        permuted = spd_grid_matrix[ordering.perm][:, ordering.perm]
        x_true = rng.standard_normal(grid_8x6.n)
        np.testing.assert_allclose(ldlt.solve(permuted @ x_true), x_true, atol=1e-8)

    def test_zero_pivot_raises(self):
        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(np.linalg.LinAlgError):
            envelope_ldlt(a)

    def test_existing_storage_not_clobbered(self, spd_grid_matrix):
        storage = EnvelopeStorage.from_matrix(spd_grid_matrix)
        envelope_ldlt(storage)
        np.testing.assert_allclose(storage.to_dense(), spd_grid_matrix.toarray())

    def test_rhs_validation(self, spd_grid_matrix):
        ldlt = envelope_ldlt(spd_grid_matrix)
        with pytest.raises(ValueError):
            ldlt.solve(np.ones(2))

    def test_operations_counted(self, spd_grid_matrix):
        assert envelope_ldlt(spd_grid_matrix).operations > 0
