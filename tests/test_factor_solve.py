"""Unit tests for the one-call envelope solve (repro.factor.solve)."""

import numpy as np
import pytest

from repro.factor.solve import envelope_solve
from repro.orderings.spectral import spectral_ordering
from repro.orderings.cuthill_mckee import rcm_ordering


class TestEnvelopeSolve:
    def test_natural_order(self, spd_grid_matrix, rng):
        x_true = rng.standard_normal(spd_grid_matrix.shape[0])
        b = spd_grid_matrix @ x_true
        result = envelope_solve(spd_grid_matrix, b)
        np.testing.assert_allclose(result.x, x_true, atol=1e-8)
        assert result.residual_norm < 1e-8
        assert result.ordering is None

    def test_with_spectral_ordering(self, grid_8x6, spd_grid_matrix, rng):
        ordering = spectral_ordering(grid_8x6, method="dense")
        x_true = rng.standard_normal(grid_8x6.n)
        b = spd_grid_matrix @ x_true
        result = envelope_solve(spd_grid_matrix, b, ordering=ordering)
        np.testing.assert_allclose(result.x, x_true, atol=1e-8)
        assert result.ordering is ordering

    def test_with_rcm_ordering(self, grid_8x6, spd_grid_matrix, rng):
        ordering = rcm_ordering(grid_8x6)
        b = rng.standard_normal(grid_8x6.n)
        result = envelope_solve(spd_grid_matrix, b, ordering=ordering)
        np.testing.assert_allclose(spd_grid_matrix @ result.x, b, atol=1e-8)

    def test_solution_independent_of_ordering(self, grid_8x6, spd_grid_matrix, rng):
        b = rng.standard_normal(grid_8x6.n)
        natural = envelope_solve(spd_grid_matrix, b).x
        reordered = envelope_solve(spd_grid_matrix, b, ordering=rcm_ordering(grid_8x6)).x
        np.testing.assert_allclose(natural, reordered, atol=1e-8)

    def test_dense_input(self, spd_grid_matrix, rng):
        b = rng.standard_normal(spd_grid_matrix.shape[0])
        result = envelope_solve(spd_grid_matrix.toarray(), b)
        assert result.residual_norm < 1e-8

    def test_rhs_shape_validation(self, spd_grid_matrix):
        with pytest.raises(ValueError):
            envelope_solve(spd_grid_matrix, np.ones(2))

    def test_factorization_exposed(self, spd_grid_matrix, rng):
        b = rng.standard_normal(spd_grid_matrix.shape[0])
        result = envelope_solve(spd_grid_matrix, b)
        assert result.factorization.operations > 0
        assert result.factorization.n == spd_grid_matrix.shape[0]
