"""Unit tests for the envelope storage scheme (repro.factor.storage)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.envelope.metrics import envelope_size
from repro.factor.storage import EnvelopeStorage
from repro.orderings.cuthill_mckee import rcm_ordering


def _tridiagonal(n):
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], [-1, 0, 1], format="csr")


class TestEnvelopeStorage:
    def test_tridiagonal_layout(self):
        a = _tridiagonal(5)
        storage = EnvelopeStorage.from_matrix(a)
        assert storage.n == 5
        assert storage.envelope_size == 4
        assert storage.storage_size == 9
        np.testing.assert_array_equal(storage.first, [0, 0, 1, 2, 3])

    def test_roundtrip_dense(self, spd_grid_matrix):
        storage = EnvelopeStorage.from_matrix(spd_grid_matrix)
        np.testing.assert_allclose(storage.to_dense(), spd_grid_matrix.toarray())

    def test_get_honours_symmetry_and_envelope(self):
        a = _tridiagonal(4)
        storage = EnvelopeStorage.from_matrix(a)
        assert storage.get(1, 0) == pytest.approx(-1.0)
        assert storage.get(0, 1) == pytest.approx(-1.0)
        assert storage.get(3, 0) == 0.0  # outside the envelope
        with pytest.raises(IndexError):
            storage.get(0, 7)

    def test_envelope_size_matches_metric(self, spd_grid_matrix, grid_8x6):
        storage = EnvelopeStorage.from_matrix(spd_grid_matrix)
        assert storage.envelope_size == envelope_size(grid_8x6)

    def test_permutation_applied(self, spd_grid_matrix, grid_8x6):
        ordering = rcm_ordering(grid_8x6)
        storage = EnvelopeStorage.from_matrix(spd_grid_matrix, perm=ordering.perm)
        expected = spd_grid_matrix[ordering.perm][:, ordering.perm].toarray()
        np.testing.assert_allclose(storage.to_dense(), expected)
        assert storage.envelope_size == envelope_size(grid_8x6, ordering.perm)

    def test_row_view_writable_in_place(self):
        storage = EnvelopeStorage.from_matrix(_tridiagonal(4))
        storage.row(2)[0] = 42.0
        assert storage.get(2, 1) == 42.0

    def test_diagonal(self):
        storage = EnvelopeStorage.from_matrix(_tridiagonal(6))
        np.testing.assert_allclose(storage.diagonal(), 2.0 * np.ones(6))

    def test_copy_independent(self):
        storage = EnvelopeStorage.from_matrix(_tridiagonal(4))
        other = storage.copy()
        other.values[:] = 0.0
        assert storage.values.max() > 0

    def test_explicit_zero_inside_envelope_is_stored(self):
        # a 3x3 matrix with a_20 != 0 forces a_21's slot to exist even if zero
        dense = np.array([[4.0, 0.0, 1.0], [0.0, 4.0, 0.0], [1.0, 0.0, 4.0]])
        storage = EnvelopeStorage.from_matrix(sp.csr_matrix(dense))
        assert storage.get(2, 1) == 0.0
        assert storage.storage_size == 3 + 2  # diagonal + row 2 spans columns 0..2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            EnvelopeStorage(3, np.zeros(2, dtype=int), np.zeros(4, dtype=int), np.zeros(3))

    def test_repr(self):
        storage = EnvelopeStorage.from_matrix(_tridiagonal(3))
        assert "envelope_size=2" in repr(storage)
