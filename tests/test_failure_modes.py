"""Failure-injection and degenerate-input tests across the public API.

Production users feed libraries empty matrices, disconnected graphs, wrong
shapes, indefinite matrices and malformed files.  These tests pin down that
every public entry point either handles the degenerate case sensibly or fails
fast with a clear exception — never with a silent wrong answer or an internal
IndexError.
"""

import io

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.pipeline import compare_orderings, reorder
from repro.eigen.fiedler import fiedler_vector
from repro.eigen.multilevel import multilevel_fiedler
from repro.envelope.metrics import bandwidth, envelope_size, envelope_statistics, frontwidths
from repro.factor.cholesky import envelope_cholesky
from repro.factor.solve import envelope_solve
from repro.factor.storage import EnvelopeStorage
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.sparse.io_hb import read_harwell_boeing
from repro.sparse.io_mm import read_matrix_market
from repro.sparse.pattern import SymmetricPattern
from repro.solvers.cg import conjugate_gradient
from repro.solvers.ic import incomplete_cholesky


class TestDegenerateGraphs:
    """Empty graphs, single vertices, isolated vertices, self-loop-only input."""

    @pytest.mark.parametrize("name", ["spectral", "rcm", "gps", "gk", "sloan", "king", "hybrid"])
    def test_single_vertex(self, name):
        ordering = ORDERING_ALGORITHMS[name](SymmetricPattern.empty(1))
        np.testing.assert_array_equal(ordering.perm, [0])

    @pytest.mark.parametrize("name", ["spectral", "rcm", "gps", "gk", "sloan", "king"])
    def test_diagonal_matrix(self, name):
        """A diagonal matrix (empty graph): every ordering is equally good."""
        pattern = SymmetricPattern.empty(6)
        ordering = ORDERING_ALGORITHMS[name](pattern)
        assert sorted(ordering.perm.tolist()) == list(range(6))
        assert envelope_size(pattern, ordering.perm) == 0

    def test_self_loops_ignored(self):
        matrix = sp.csr_matrix(np.diag([1.0, 2.0, 3.0]))
        pattern = SymmetricPattern.from_scipy(matrix)
        assert pattern.num_edges == 0
        assert bandwidth(pattern) == 0

    def test_two_isolated_vertices_plus_edge(self):
        pattern = SymmetricPattern.from_edges(4, [(1, 2)])
        report = reorder(pattern, algorithm="spectral", method="dense")
        assert sorted(report.ordering.perm.tolist()) == list(range(4))

    def test_empty_metrics(self):
        pattern = SymmetricPattern.empty(0)
        assert envelope_size(pattern) == 0
        assert frontwidths(pattern).size == 0
        stats = envelope_statistics(pattern)
        assert stats.n == 0 and stats.envelope_size == 0

    def test_compare_orderings_on_diagonal_matrix(self):
        result = compare_orderings(SymmetricPattern.empty(5), algorithms=("rcm", "gps"))
        assert all(row.envelope_size == 0 for row in result.rows)


class TestEigenFailureModes:
    def test_fiedler_on_single_vertex(self):
        with pytest.raises(ValueError):
            fiedler_vector(SymmetricPattern.empty(1))

    def test_fiedler_on_disconnected_is_explicit(self, disconnected_pattern):
        with pytest.raises(ValueError, match="disconnected"):
            fiedler_vector(disconnected_pattern)

    def test_multilevel_on_tiny_graph(self):
        with pytest.raises(ValueError):
            multilevel_fiedler(SymmetricPattern.empty(1))

    def test_fiedler_bad_method_message_lists_options(self, path10):
        with pytest.raises(ValueError, match="lanczos"):
            fiedler_vector(path10, method="power")


class TestFactorFailureModes:
    def test_cholesky_on_indefinite_matrix(self):
        a = sp.csr_matrix(np.array([[1.0, 3.0], [3.0, 1.0]]))
        with pytest.raises(np.linalg.LinAlgError, match="positive definite"):
            envelope_cholesky(a)

    def test_cholesky_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            EnvelopeStorage.from_matrix(np.zeros((2, 3)))

    def test_solve_wrong_rhs_length(self, spd_grid_matrix):
        with pytest.raises(ValueError, match="shape"):
            envelope_solve(spd_grid_matrix, np.ones(5))

    def test_storage_get_out_of_range(self, spd_grid_matrix):
        storage = EnvelopeStorage.from_matrix(spd_grid_matrix)
        with pytest.raises(IndexError):
            storage.get(-1, 0)

    def test_ic0_on_zero_diagonal(self):
        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(np.linalg.LinAlgError):
            incomplete_cholesky(a)

    def test_cg_on_indefinite_matrix_does_not_blow_up(self, rng):
        a = np.array([[1.0, 2.0], [2.0, -1.0]])
        result = conjugate_gradient(a, rng.standard_normal(2), max_iter=10)
        assert np.isfinite(result.x).all()


class TestIOFailureModes:
    def test_matrix_market_truncated_entries(self):
        text = "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n"
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(text))

    def test_matrix_market_garbage(self):
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO("this is not a matrix\n1 2 3\n"))

    def test_harwell_boeing_truncated_data(self):
        lines = [
            f"{'broken':<72}{'KEY':<8}",
            f"{2:>14d}{1:>14d}{1:>14d}{0:>14d}{0:>14d}",
            f"{'PSA':<3}{'':11}{3:>14d}{3:>14d}{2:>14d}{0:>14d}",
            f"{'(10I10)':<16}{'(10I10)':<16}{'(4E24.16)':<20}{'':<20}",
            f"{1:>10d}{2:>10d}{3:>10d}{3:>10d}",
            # row-index card missing entirely
        ]
        with pytest.raises(ValueError, match="end of file"):
            read_harwell_boeing(io.StringIO("\n".join(lines) + "\n"))

    def test_nonexistent_file(self):
        with pytest.raises(OSError):
            read_matrix_market("/nonexistent/path/matrix.mtx")


class TestPipelineFailureModes:
    def test_reorder_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            reorder(np.zeros((3, 5)))

    def test_reorder_unknown_algorithm_lists_names(self, grid_8x6):
        with pytest.raises(KeyError, match="spectral"):
            reorder(grid_8x6, algorithm="does-not-exist")

    def test_cli_missing_file_raises_cleanly(self):
        from repro.cli import main

        with pytest.raises(OSError):
            main(["reorder", "/nonexistent/matrix.mtx"])

    def test_cli_unknown_problem(self, capsys):
        from repro.cli import main

        # structured error path: exit code 2 with the registry listing on
        # stderr, not a raw KeyError traceback
        assert main(["compare", "problem:NOSUCHMATRIX"]) == 2
        assert "unknown problem" in capsys.readouterr().err
