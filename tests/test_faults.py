"""Deterministic fault injection (repro.faults) and the crash-retry
machinery it exercises.

The load-bearing invariant, pinned here from several angles: a suite run
under injected worker crashes / hangs / store damage, given a sufficient
retry budget, converges to a canonical artifact **byte-identical** to a
fault-free serial run — and the injected faults remain visible as
superseded records in the streamed history, never in the final artifact.
"""

import json
import os

import pytest

from repro import faults
from repro.batch import dedupe_records, run_suite
from repro.batch.engine import _fault_key, execute_task
from repro.batch.tasks import BatchTask, build_tasks
from repro.faults import FaultError, FaultPlan
from repro.store import ArtifactStore

SCALE = 0.02

#: Chosen so that, for ``POW9/gk``, the initial attempt (#a0) and the first
#: retry (#a1) crash while the second retry (#a2) runs clean — two full
#: crash-retry rounds, pinned deterministic (see FaultPlan._draw).
CRASH_SPEC = "seed=9;worker.crash@0.6,point=start"
#: ``POW9/rcm#a0`` crashes *after* computing (torn result); #a1 is clean.
FINISH_SPEC = "seed=9;worker.crash@0.5,point=finish"
#: ``POW9/rcm#a0`` hangs; the first timeout-escalation retry (#a1) is clean.
HANG_SPEC = "seed=0;worker.hang@0.5,sleep_s=30"


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    for name in ("REPRO_FAULTS", "REPRO_FAULTS_LOG", "REPRO_FAULTS_PROTECT_PID"):
        monkeypatch.delenv(name, raising=False)
    faults.reset_fault_plan()
    yield
    faults.reset_fault_plan()


def _activate(monkeypatch, spec: str) -> None:
    """Activate a spec the way the CLI does: env + cache reset + protect
    this (coordinator) process so only forked workers can die."""
    monkeypatch.setenv("REPRO_FAULTS", spec)
    faults.reset_fault_plan()
    faults.protect_current_process()


def _deactivate(monkeypatch) -> None:
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset_fault_plan()


class TestSpecParsing:
    def test_round_trip_describe(self):
        plan = FaultPlan.parse("seed=7;worker.crash@0.25,point=start;store.corrupt@0.5")
        assert plan.seed == 7
        assert [r.site for r in plan.rules] == ["worker.crash", "store.corrupt"]
        assert "worker.crash@0.25,point=start" in plan.describe()

    def test_empty_spec_is_a_plan_with_no_rules(self):
        plan = FaultPlan.parse("")
        assert plan.rules == [] and plan.fires("worker.crash", "x") is None

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.parse("worker.explode@0.5")

    def test_non_numeric_rate_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            FaultPlan.parse("worker.crash@lots")

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan.parse("worker.crash@1.5")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="does not take parameter"):
            FaultPlan.parse("store.corrupt@0.5,point=start")

    def test_bad_directive_rejected(self):
        with pytest.raises(ValueError, match="invalid fault directive"):
            FaultPlan.parse("justnonsense")
        with pytest.raises(ValueError, match="unknown fault directive"):
            FaultPlan.parse("sede=7")

    def test_crash_point_validated(self):
        with pytest.raises(ValueError, match="'start' or 'finish'"):
            FaultPlan.parse("worker.crash@0.5,point=middle")

    def test_sleep_coerced_to_float(self):
        plan = FaultPlan.parse("worker.hang@1.0,sleep_s=2")
        assert plan.rules[0].params["sleep_s"] == 2.0
        with pytest.raises(ValueError, match="must be a number"):
            FaultPlan.parse("worker.hang@1.0,sleep_s=forever")


class TestDeterministicDraws:
    def test_draws_are_pure_functions_of_seed_site_key(self):
        a = FaultPlan.parse("seed=7;worker.crash@0.5,point=start")
        b = FaultPlan.parse("seed=7;worker.crash@0.5,point=start")
        keys = [f"POW9/rcm#a{k}" for k in range(16)]
        fires_a = [a.fires("worker.crash", k, point="start") is not None for k in keys]
        fires_b = [b.fires("worker.crash", k, point="start") is not None for k in keys]
        assert fires_a == fires_b
        assert any(fires_a) and not all(fires_a)  # rate 0.5 mixes outcomes

    def test_pinned_draw_sequence(self):
        # The module-docstring example; a change here means every pinned
        # chaos spec in tests and CI draws differently — do not let it move.
        plan = FaultPlan.parse("seed=7;worker.crash@0.5,point=start")
        assert [plan.fires("worker.crash", f"POW9/rcm#a{k}", point="start")
                is not None for k in range(4)] == [False, True, False, True]

    def test_rate_zero_never_rate_one_always(self):
        never = FaultPlan.parse("journal.flaky@0.0")
        always = FaultPlan.parse("journal.flaky@1.0")
        for k in range(32):
            assert never.fires("journal.flaky", f"k{k}") is None
            assert always.fires("journal.flaky", f"k{k}") is not None

    def test_point_filtering(self):
        plan = FaultPlan.parse("seed=9;worker.crash@1.0,point=finish")
        assert plan.fires("worker.crash", "x", point="start") is None
        assert plan.fires("worker.crash", "x", point="finish") is not None

    def test_event_log_written_on_fire(self, tmp_path):
        log = tmp_path / "events.jsonl"
        plan = FaultPlan.parse(f"journal.flaky@1.0;log={log}")
        plan.fires("journal.flaky", "the-key")
        event = json.loads(log.read_text().splitlines()[0])
        assert event["site"] == "journal.flaky" and event["key"] == "the-key"
        assert event["pid"] == os.getpid()


class TestPlanResolution:
    def test_disabled_by_default(self):
        assert faults.get_fault_plan() is None
        assert faults.fires("worker.crash", "x") is None
        faults.worker_faults("x")  # no-op, does not raise or kill

    def test_env_activation_and_cache_invalidation(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "journal.flaky@1.0")
        faults.reset_fault_plan()
        assert faults.get_fault_plan().rules[0].site == "journal.flaky"
        monkeypatch.setenv("REPRO_FAULTS", "journal.flaky@0.0")
        assert faults.get_fault_plan().rules[0].rate == 0.0  # re-parsed

    def test_override_beats_env_and_none_forces_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "journal.flaky@1.0")
        faults.reset_fault_plan()
        faults.set_fault_plan("store.torn@1.0")
        assert faults.get_fault_plan().rules[0].site == "store.torn"
        faults.set_fault_plan(None)
        assert faults.get_fault_plan() is None
        faults.reset_fault_plan()
        assert faults.get_fault_plan().rules[0].site == "journal.flaky"

    def test_flaky_io_raises_oserror_subclass(self):
        faults.set_fault_plan("journal.flaky@1.0")
        with pytest.raises(FaultError) as excinfo:
            faults.flaky_io("journal.flaky", "k")
        assert isinstance(excinfo.value, OSError)

    def test_protected_process_survives_certain_crash(self):
        faults.set_fault_plan("worker.crash@1.0,point=start;worker.hang@1.0,sleep_s=60")
        faults.protect_current_process()
        faults.worker_faults("POW9/rcm#a0")  # would SIGKILL us if unprotected

    def test_slow_fires_even_when_protected(self, monkeypatch):
        slept = []
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        faults.set_fault_plan("worker.slow@1.0,sleep_s=0.25")
        faults.protect_current_process()
        faults.worker_faults("POW9/rcm#a0")
        assert slept == [0.25]


class TestEngineFaultKeys:
    def test_fault_key_embeds_attempt_ordinal(self):
        task = build_tasks(["POW9"], ("rcm",), scale=SCALE)[0]
        assert _fault_key(task) == "POW9/rcm#a0"
        import dataclasses

        retried = dataclasses.replace(task, attempt=2)
        assert _fault_key(retried) == "POW9/rcm#a2"

    def test_attempt_never_serialized(self):
        # The ordinal exists for fault draws only; records and artifacts
        # must stay byte-identical whatever attempt produced them.
        task = BatchTask(problem="POW9", algorithm="rcm", scale=SCALE, attempt=3)
        record = execute_task(task)
        assert "attempt" not in record.to_dict(include_timing=True)


class TestCrashRetry:
    def _run(self, monkeypatch, spec, **kwargs):
        _activate(monkeypatch, spec)
        seen = []
        try:
            suite = run_suite(["POW9"], ("rcm", "gk"), scale=SCALE,
                              on_record=lambda r, d, t: seen.append(r), **kwargs)
        finally:
            _deactivate(monkeypatch)
        return suite, seen

    def _clean(self):
        return run_suite(["POW9"], ("rcm", "gk"), scale=SCALE)

    def test_crashes_retried_to_byte_identical_artifact(self, monkeypatch):
        suite, seen = self._run(monkeypatch, CRASH_SPEC,
                                n_jobs=2, retry_crashes=4, crash_backoff_s=0.01)
        crashes = [r for r in seen
                   if (r.error or {}).get("type") == "WorkerCrashed"]
        assert len(crashes) == 2          # POW9/gk at #a0 and #a1
        assert all(r.ok for r in suite.records)
        assert (suite.to_json(include_timing=False)
                == self._clean().to_json(include_timing=False))

    def test_superseding_record_chain(self, monkeypatch):
        _suite, seen = self._run(monkeypatch, CRASH_SPEC,
                                 n_jobs=2, retry_crashes=4, crash_backoff_s=0.01)
        gk = [r for r in seen if r.algorithm == "gk"]
        assert [(r.status, (r.error or {}).get("type")) for r in gk] == [
            ("error", "WorkerCrashed"),
            ("error", "WorkerCrashed"),
            ("ok", None),
        ]
        # The stream-resume/merge supersede rule collapses the chain to the
        # final attempt — unchanged from the timeout-escalation semantics.
        assert dedupe_records(gk)[0].ok

    def test_retry_disabled_keeps_crash_record(self, monkeypatch):
        suite, _seen = self._run(monkeypatch, CRASH_SPEC, n_jobs=2)
        by_alg = {r.algorithm: r for r in suite.records}
        assert by_alg["rcm"].ok
        assert (by_alg["gk"].error or {}).get("type") == "WorkerCrashed"

    def test_backoff_schedule_monotone_jittered_deterministic(self, monkeypatch):
        from repro.batch import engine

        delays_a: list = []
        monkeypatch.setattr(engine, "_sleep", delays_a.append)
        self._run(monkeypatch, CRASH_SPEC, n_jobs=2, retry_crashes=4,
                  crash_backoff_s=0.05)
        delays_b: list = []
        monkeypatch.setattr(engine, "_sleep", delays_b.append)
        self._run(monkeypatch, CRASH_SPEC, n_jobs=2, retry_crashes=4,
                  crash_backoff_s=0.05)
        assert len(delays_a) == 2          # two crash rounds for POW9/gk
        for k, delay in enumerate(delays_a):
            base = 0.05 * 2 ** k
            assert base <= delay <= 1.5 * base  # jitter in [1, 1.5) x base
        assert delays_a[0] < delays_a[1]       # exponential growth dominates
        assert delays_a == delays_b            # jitter is seeded, not random

    def test_finish_point_crash_retried(self, monkeypatch):
        # The torn-result case: the cell computed, the worker died before
        # reporting.  Runs on the shared-pool path (no timeout).
        suite, seen = self._run(monkeypatch, FINISH_SPEC,
                                n_jobs=2, retry_crashes=2, crash_backoff_s=0.01)
        assert any((r.error or {}).get("type") == "WorkerCrashed" for r in seen)
        assert all(r.ok for r in suite.records)
        assert (suite.to_json(include_timing=False)
                == self._clean().to_json(include_timing=False))

    def test_hang_caught_by_timeout_and_retried(self, monkeypatch):
        # Pinned draws for HANG_SPEC at rate 0.5: rcm hangs at #a0 only;
        # gk hangs at #a0..#a2 and is clean at #a3 — three escalation
        # rounds are needed to absorb the worst cell.
        suite, seen = self._run(monkeypatch, HANG_SPEC, n_jobs=2,
                                timeout=2.0, retry_timeouts=3)
        assert any(r.timed_out for r in seen)      # the injected hang
        assert all(r.ok for r in suite.records)    # absorbed by escalation
        assert (suite.to_json(include_timing=False)
                == self._clean().to_json(include_timing=False))

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError, match="retry_crashes"):
            run_suite(["POW9"], ("rcm",), scale=SCALE, retry_crashes=-1)
        with pytest.raises(ValueError, match="crash_backoff_s"):
            run_suite(["POW9"], ("rcm",), scale=SCALE, crash_backoff_s=-0.1)


class TestStoreFaults:
    def _store_with_entry(self, tmp_path, spec):
        import numpy as np

        store = ArtifactStore(tmp_path / "store")
        faults.set_fault_plan(spec)
        try:
            store.save("laplacian", 1, "digest", {"x": np.arange(4)})
        finally:
            faults.set_fault_plan(None)
            faults.reset_fault_plan()
        return store

    def test_corrupt_write_quarantined_as_miss(self, tmp_path):
        store = self._store_with_entry(tmp_path, "store.corrupt@1.0")
        assert store.load("laplacian", 1, "digest") is None
        assert store.stats["corrupt"] == 1
        assert store.stats["quarantined"] == 1
        assert len(store.quarantined_entries()) == 1
        assert store.entries() == []  # no longer addressable

    def test_torn_write_quarantined_as_miss(self, tmp_path):
        store = self._store_with_entry(tmp_path, "store.torn@1.0")
        assert store.load("laplacian", 1, "digest") is None
        assert store.stats["quarantined"] == 1

    def test_info_reports_quarantine(self, tmp_path):
        store = self._store_with_entry(tmp_path, "store.corrupt@1.0")
        store.load("laplacian", 1, "digest")
        info = store.info()
        assert info["quarantine"]["entries"] == 1
        assert info["quarantine"]["bytes"] > 0

    def test_clear_spares_quarantine_unless_asked(self, tmp_path):
        store = self._store_with_entry(tmp_path, "store.corrupt@1.0")
        store.load("laplacian", 1, "digest")
        assert store.clear() == 0                      # nothing addressable
        assert len(store.quarantined_entries()) == 1   # evidence kept
        removed = store.clear(include_quarantine=True)
        assert removed == 1
        assert store.quarantined_entries() == []

    def test_no_faults_no_quarantine(self, tmp_path):
        import numpy as np

        store = ArtifactStore(tmp_path / "store")
        store.save("laplacian", 1, "digest", {"x": np.arange(4)})
        assert store.load("laplacian", 1, "digest") is not None
        assert store.stats["quarantined"] == 0
