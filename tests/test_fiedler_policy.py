"""The ``tol_policy="ordering"`` fast path and the reorthogonalization policy.

Two guarantees are pinned here:

* **Differential sweep** — on the full 25-pattern random sweep (all below
  :data:`repro.eigen.lanczos.ORDERING_EXACT_MAX_N`, where the ordering policy
  accepts only exact ranking stability), the fast path produces exactly the
  same envelope/bandwidth metrics as the default path for both the Lanczos
  and the multilevel solver.
* **Ghost-eigenvalue safety** — selective reorthogonalization matches the
  full-reorthogonalization escape hatch on eigenvalues and meets the same
  residual tolerance; the explicitly computed residual (not a Ritz estimate)
  backs the convergence flag, so a ghost pair cannot fake it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collections.generators import random_geometric_pattern
from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.eigen.fiedler import fiedler_vector
from repro.eigen.lanczos import ORDERING_EXACT_MAX_N, lanczos_smallest_nontrivial
from repro.eigen.multilevel import multilevel_fiedler
from repro.envelope.metrics import envelope_statistics
from repro.graph.laplacian import laplacian_matrix
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.sparse.pattern import SymmetricPattern


def _sweep_patterns(count: int = 25):
    """The 25-pattern differential sweep: random structures of mixed density,
    all small enough for the exact-ranking regime of the ordering policy."""
    patterns = []
    master = np.random.default_rng(20260730)
    for i in range(count):
        n = int(master.integers(30, 260))
        density = float(master.uniform(1.0, 3.0))
        edge_count = int(n * density)
        edges = master.integers(0, n, size=(edge_count, 2))
        edges = [(int(a), int(b)) for a, b in edges if a != b]
        patterns.append(SymmetricPattern.from_edges(n, edges))
    return patterns


@pytest.mark.parametrize("method", ["lanczos", "multilevel"])
def test_fast_policy_matches_default_metrics_on_sweep(method):
    """envelope/bandwidth of --fiedler-policy fast == default, 25 patterns."""
    spectral = ORDERING_ALGORITHMS["spectral"]
    for i, pattern in enumerate(_sweep_patterns()):
        default = spectral(pattern.copy(), method=method,
                           rng=np.random.default_rng(i))
        fast = spectral(pattern.copy(), method=method,
                        rng=np.random.default_rng(i), tol_policy="ordering")
        stats_default = envelope_statistics(pattern, default.perm)
        stats_fast = envelope_statistics(pattern, fast.perm)
        assert stats_fast.envelope_size == stats_default.envelope_size, (
            f"pattern #{i} (n={pattern.n}, {method}): envelope diverged"
        )
        assert stats_fast.bandwidth == stats_default.bandwidth, (
            f"pattern #{i} (n={pattern.n}, {method}): bandwidth diverged"
        )


def test_fast_policy_is_noop_below_exact_threshold():
    """Below ORDERING_EXACT_MAX_N the multilevel fast path is byte-identical."""
    pattern = random_geometric_pattern(400, seed=2)
    assert pattern.n <= ORDERING_EXACT_MAX_N
    default = multilevel_fiedler(pattern.copy(), coarsest_size=60, rng=1)
    fast = multilevel_fiedler(pattern.copy(), coarsest_size=60, rng=1,
                              tol_policy="ordering")
    assert fast.eigenvalue == default.eigenvalue
    np.testing.assert_array_equal(fast.eigenvector, default.eigenvector)


def test_ordering_policy_stops_early_on_large_graph():
    pattern = grid2d_pattern(60, 48)  # 2880 > ORDERING_EXACT_MAX_N
    assert pattern.n > ORDERING_EXACT_MAX_N
    lap = laplacian_matrix(pattern)
    default = lanczos_smallest_nontrivial(lap, rng=0)
    fast = lanczos_smallest_nontrivial(lap, rng=0, tol_policy="ordering")
    assert fast.converged
    assert fast.stopped_on == "ordering"
    assert fast.iterations < default.iterations
    # the early-stopped eigenvalue is the same eigenvalue to ordering accuracy
    assert fast.eigenvalue == pytest.approx(default.eigenvalue, rel=1e-3)


class TestSelectiveReorthogonalization:
    @pytest.mark.parametrize("n", [24, 150])
    def test_selective_matches_full_on_path_graphs(self, n):
        lap = laplacian_matrix(path_pattern(n))
        full = lanczos_smallest_nontrivial(lap, rng=3, reorth="full", tol=1e-10)
        selective = lanczos_smallest_nontrivial(lap, rng=3, tol=1e-10)
        assert selective.converged == full.converged or selective.converged
        assert selective.eigenvalue == pytest.approx(full.eigenvalue, rel=1e-7)
        # Residual parity (the acceptance bar): selective — including its
        # full-reorth fallback restart on hard cases — never ends with a
        # worse residual than the full path's tolerance achievement.
        assert selective.residual_norm <= max(full.residual_norm, 1e-10)

    def test_selective_reorthogonalizes_less_than_full(self):
        pattern = grid2d_pattern(40, 30)
        lap = laplacian_matrix(pattern)
        full = lanczos_smallest_nontrivial(lap, rng=0, reorth="full")
        selective = lanczos_smallest_nontrivial(lap, rng=0)
        assert full.reorth_count == full.iterations
        assert selective.reorth_count < full.reorth_count
        assert selective.converged
        assert selective.eigenvalue == pytest.approx(full.eigenvalue, rel=1e-6)

    def test_no_ghost_zero_eigenvalue_on_connected_graph(self):
        """Loss of orthogonality against the deflated constant vector would
        surface as a spurious ~0 Ritz value; the per-step re-deflation and
        the explicit residual check keep the converged pair genuine."""
        pattern = grid2d_pattern(45, 40)  # long run: 1800 vertices
        lap = laplacian_matrix(pattern)
        exact = 2.0 - 2.0 * np.cos(np.pi / 45) + 2.0 - 2.0 * np.cos(0.0)
        result = lanczos_smallest_nontrivial(lap, rng=1, tol=1e-9)
        dense_lambda2 = float(np.linalg.eigvalsh(lap.toarray())[1])
        assert result.eigenvalue == pytest.approx(dense_lambda2, rel=1e-5)
        assert result.eigenvalue > 1e-6  # not the deflated null eigenvalue
        residual = np.linalg.norm(
            lap @ result.eigenvector - result.eigenvalue * result.eigenvector
        )
        assert residual == pytest.approx(result.residual_norm, rel=1e-6)

    def test_invalid_reorth_rejected(self):
        lap = laplacian_matrix(path_pattern(8))
        with pytest.raises(ValueError, match="reorth"):
            lanczos_smallest_nontrivial(lap, reorth="sometimes")

    def test_invalid_tol_policy_rejected(self):
        lap = laplacian_matrix(path_pattern(8))
        with pytest.raises(ValueError, match="tol_policy"):
            lanczos_smallest_nontrivial(lap, tol_policy="vibes")
        with pytest.raises(ValueError, match="tol_policy"):
            multilevel_fiedler(path_pattern(8), tol_policy="vibes")
        with pytest.raises(ValueError, match="tol_policy"):
            fiedler_vector(path_pattern(8), tol_policy="vibes")


def test_fiedler_vector_forwards_policy():
    pattern = grid2d_pattern(16, 12)
    default = fiedler_vector(pattern, method="lanczos", rng=4)
    fast = fiedler_vector(pattern, method="lanczos", rng=4, tol_policy="ordering")
    # small graph: exact regime; eigenpairs agree to solver accuracy
    assert fast.eigenvalue == pytest.approx(default.eigenvalue, rel=1e-6)
