"""Golden regression tests for the batch engine's structured results.

``tests/golden/suite_small.json`` is the canonical (timing-free) JSON
artifact of a suite run over three tiny registered problems with the paper's
four algorithms at scale 0.02.  A fresh run — serial or over two worker
processes — must reproduce it *byte for byte*: any drift in envelope size,
bandwidth, frontwidth statistics, seeding or the schema itself fails here.

``tests/golden/suite_random.json`` pins the same contract for the five
random-graph families (``RANDOM/*``) at scale 0.0003 — one cell per family
per paper algorithm — so generator drift (a changed rng draw order, a
different component trim) fails loudly rather than silently changing every
downstream benchmark.

Regenerate (only after an intentional algorithm/schema change) with::

    PYTHONPATH=src python -c "
    from pathlib import Path
    from repro.batch import run_suite
    suite = run_suite(['CAN1072', 'DWT2680', 'POW9'], scale=0.02, base_seed=0)
    Path('tests/golden/suite_small.json').write_text(suite.to_json(include_timing=False))"

    PYTHONPATH=src python -c "
    from pathlib import Path
    from repro.batch import run_suite
    from repro.collections.registry import available_problems
    problems = available_problems('random', paper_order=True)
    suite = run_suite(problems, scale=0.0003, base_seed=0)
    Path('tests/golden/suite_random.json').write_text(suite.to_json(include_timing=False))"
"""

from pathlib import Path

import pytest

from repro.batch import SuiteResult, merge_results, run_suite
from repro.orderings.registry import PAPER_ALGORITHMS

GOLDEN_PATH = Path(__file__).parent / "golden" / "suite_small.json"
PROBLEMS = ("CAN1072", "DWT2680", "POW9")
SCALE = 0.02


def _fresh_suite(n_jobs: int, shard: tuple | None = None) -> SuiteResult:
    return run_suite(PROBLEMS, PAPER_ALGORITHMS, scale=SCALE, n_jobs=n_jobs,
                     base_seed=0, shard=shard)


@pytest.fixture(scope="module")
def golden_text() -> str:
    return GOLDEN_PATH.read_text()


def test_golden_file_is_current_schema(golden_text):
    suite = SuiteResult.from_json(golden_text)
    assert suite.problems == list(PROBLEMS)
    assert suite.algorithms == list(PAPER_ALGORITHMS)
    assert len(suite.records) == len(PROBLEMS) * len(PAPER_ALGORITHMS)
    assert suite.failures == []
    # timing fields were stripped when the golden was written
    assert all(record.time_s == 0.0 for record in suite.records)


def test_serial_run_matches_golden_byte_for_byte(golden_text):
    assert _fresh_suite(n_jobs=1).to_json(include_timing=False) == golden_text


def test_two_worker_run_matches_golden_byte_for_byte(golden_text):
    assert _fresh_suite(n_jobs=2).to_json(include_timing=False) == golden_text


def test_fresh_run_diffs_clean_against_golden(golden_text):
    golden = SuiteResult.from_json(golden_text)
    assert golden.diff(_fresh_suite(n_jobs=1)) == []


def test_three_way_shard_merge_matches_golden_byte_for_byte(golden_text):
    """The distribution acceptance criterion: --shard 1/3 + 2/3 + 3/3,
    merged, is byte-identical in canonical form to the single-machine run."""
    shards = [_fresh_suite(n_jobs=1, shard=(k, 3)) for k in (1, 2, 3)]
    assert sum(len(shard.records) for shard in shards) == len(PROBLEMS) * len(PAPER_ALGORITHMS)
    merged = merge_results(shards)
    assert merged.to_json(include_timing=False) == golden_text


class TestRandomFamiliesGolden:
    """Same golden contract over the enlarged problem set: one pinned cell
    per random-graph family per paper algorithm."""

    RANDOM_GOLDEN_PATH = Path(__file__).parent / "golden" / "suite_random.json"
    RANDOM_PROBLEMS = ("RANDOM/BA", "RANDOM/GNP", "RANDOM/GNM", "RANDOM/WS",
                       "RANDOM/RMAT")
    RANDOM_SCALE = 0.0003

    @pytest.fixture(scope="class")
    def golden_random_text(self) -> str:
        return self.RANDOM_GOLDEN_PATH.read_text()

    def _fresh(self, n_jobs: int, shard: tuple | None = None) -> SuiteResult:
        return run_suite(self.RANDOM_PROBLEMS, PAPER_ALGORITHMS,
                         scale=self.RANDOM_SCALE, n_jobs=n_jobs,
                         base_seed=0, shard=shard)

    def test_golden_file_is_current_schema(self, golden_random_text):
        suite = SuiteResult.from_json(golden_random_text)
        assert suite.problems == list(self.RANDOM_PROBLEMS)
        assert suite.algorithms == list(PAPER_ALGORITHMS)
        assert len(suite.records) == len(self.RANDOM_PROBLEMS) * len(PAPER_ALGORITHMS)
        assert suite.failures == []
        assert all(record.status == "ok" for record in suite.records)

    def test_serial_run_matches_golden_byte_for_byte(self, golden_random_text):
        assert self._fresh(n_jobs=1).to_json(include_timing=False) == golden_random_text

    def test_two_worker_run_matches_golden_byte_for_byte(self, golden_random_text):
        assert self._fresh(n_jobs=2).to_json(include_timing=False) == golden_random_text

    def test_three_way_shard_merge_matches_golden_byte_for_byte(self, golden_random_text):
        shards = [self._fresh(n_jobs=1, shard=(k, 3)) for k in (1, 2, 3)]
        total = len(self.RANDOM_PROBLEMS) * len(PAPER_ALGORITHMS)
        assert sum(len(shard.records) for shard in shards) == total
        merged = merge_results(shards)
        assert merged.to_json(include_timing=False) == golden_random_text
