"""Unit tests for the multilevel coarsener (repro.graph.coarsen)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.collections.generators import random_geometric_pattern
from repro.collections.meshes import grid2d_pattern, path_pattern, star_pattern
from repro.graph.coarsen import (
    coarsen_graph,
    coarsening_hierarchy,
    interpolate_vector,
    maximal_independent_set,
)
from repro.graph.components import connected_components, is_connected
from tests.conftest import small_connected_patterns, small_patterns


def _assert_independent_and_maximal(pattern, mis):
    selected = np.zeros(pattern.n, dtype=bool)
    selected[mis] = True
    # independence: no edge inside the set
    for u, v in pattern.edges():
        assert not (selected[u] and selected[v])
    # maximality: every unselected vertex has a selected neighbour
    for v in range(pattern.n):
        if not selected[v]:
            assert selected[pattern.neighbors(v)].any()


class TestMaximalIndependentSet:
    def test_path(self, path10):
        _assert_independent_and_maximal(path10, maximal_independent_set(path10))

    def test_star_contains_all_leaves_or_center(self, star9):
        mis = maximal_independent_set(star9)
        _assert_independent_and_maximal(star9, mis)

    def test_grid(self, grid_12x9):
        _assert_independent_and_maximal(grid_12x9, maximal_independent_set(grid_12x9))

    def test_strategies_all_valid(self, geometric200):
        for strategy in ("degree", "natural", "random"):
            mis = maximal_independent_set(geometric200, rng=3, strategy=strategy)
            _assert_independent_and_maximal(geometric200, mis)

    def test_unknown_strategy(self, path10):
        with pytest.raises(ValueError):
            maximal_independent_set(path10, strategy="bogus")

    def test_empty_graph_selects_everything(self):
        from repro.sparse.pattern import SymmetricPattern

        mis = maximal_independent_set(SymmetricPattern.empty(5))
        np.testing.assert_array_equal(mis, np.arange(5))

    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_property_independent_and_maximal(self, pattern):
        _assert_independent_and_maximal(pattern, maximal_independent_set(pattern))


class TestCoarsenGraph:
    def test_domains_partition_vertices(self, grid_12x9):
        level = coarsen_graph(grid_12x9)
        assert level.domain_of.min() >= 0
        assert level.domain_of.max() < level.coarse_pattern.n
        # every coarse vertex owns its own seed
        np.testing.assert_array_equal(
            level.domain_of[level.coarse_vertices],
            np.arange(level.coarse_pattern.n),
        )

    def test_coarse_graph_smaller(self, geometric200):
        level = coarsen_graph(geometric200)
        assert 0 < level.coarse_pattern.n < geometric200.n

    def test_connectivity_preserved(self, geometric200):
        assert is_connected(geometric200)
        level = coarsen_graph(geometric200)
        assert is_connected(level.coarse_pattern)

    def test_component_count_preserved(self, disconnected_pattern):
        before, _ = connected_components(disconnected_pattern)
        level = coarsen_graph(disconnected_pattern)
        after, _ = connected_components(level.coarse_pattern)
        assert after == before

    def test_coarse_edges_come_from_fine_edges(self, grid_8x6):
        level = coarsen_graph(grid_8x6)
        dom = level.domain_of
        fine_cross = {
            (min(dom[u], dom[v]), max(dom[u], dom[v]))
            for u, v in grid_8x6.edges()
            if dom[u] != dom[v]
        }
        coarse_edges = set(level.coarse_pattern.edges())
        assert coarse_edges == fine_cross

    @given(small_connected_patterns(min_n=3))
    @settings(max_examples=30, deadline=None)
    def test_property_connected_stays_connected(self, pattern):
        level = coarsen_graph(pattern)
        assert is_connected(level.coarse_pattern)


class TestCoarseningHierarchy:
    def test_reaches_target_size(self):
        big = grid2d_pattern(25, 25)
        hierarchy = coarsening_hierarchy(big, coarsest_size=50)
        assert hierarchy
        assert hierarchy[-1].coarse_pattern.n <= 50 or len(hierarchy) == 50

    def test_small_graph_needs_no_levels(self, path10):
        assert coarsening_hierarchy(path10, coarsest_size=100) == []

    def test_sizes_strictly_decrease(self):
        big = random_geometric_pattern(400, seed=11)
        hierarchy = coarsening_hierarchy(big, coarsest_size=30)
        sizes = [big.n] + [lvl.coarse_pattern.n for lvl in hierarchy]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_max_levels_respected(self):
        big = grid2d_pattern(20, 20)
        hierarchy = coarsening_hierarchy(big, coarsest_size=2, max_levels=3)
        assert len(hierarchy) <= 3


class TestInterpolateVector:
    def test_piecewise_constant(self, grid_8x6):
        level = coarsen_graph(grid_8x6)
        coarse = np.arange(level.coarse_pattern.n, dtype=float)
        fine = interpolate_vector(level, coarse)
        assert fine.shape == (grid_8x6.n,)
        np.testing.assert_allclose(fine, coarse[level.domain_of])

    def test_seed_vertices_keep_their_value(self, geometric200):
        level = coarsen_graph(geometric200)
        coarse = np.random.default_rng(0).standard_normal(level.coarse_pattern.n)
        fine = interpolate_vector(level, coarse)
        np.testing.assert_allclose(fine[level.coarse_vertices], coarse)

    def test_shape_mismatch(self, grid_8x6):
        level = coarsen_graph(grid_8x6)
        with pytest.raises(ValueError):
            interpolate_vector(level, np.ones(level.coarse_pattern.n + 1))
