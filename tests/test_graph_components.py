"""Unit tests for repro.graph.components."""

import numpy as np
from hypothesis import given, settings

from repro.graph.components import (
    component_subpatterns,
    connected_components,
    is_connected,
    largest_component,
)
from repro.sparse.pattern import SymmetricPattern
from tests.conftest import small_patterns


class TestConnectedComponents:
    def test_connected_graph_single_component(self, grid_8x6):
        count, labels = connected_components(grid_8x6)
        assert count == 1
        assert set(labels.tolist()) == {0}

    def test_disconnected_counts(self, disconnected_pattern):
        count, labels = connected_components(disconnected_pattern)
        assert count == 3
        assert labels[0] == labels[7]
        assert labels[8] == labels[15]
        assert labels[16] not in (labels[0], labels[8])

    def test_labels_numbered_by_smallest_vertex(self, disconnected_pattern):
        _, labels = connected_components(disconnected_pattern)
        assert labels[0] == 0
        assert labels[8] == 1
        assert labels[16] == 2

    def test_empty_graph_all_singletons(self):
        count, labels = connected_components(SymmetricPattern.empty(4))
        assert count == 4
        np.testing.assert_array_equal(labels, [0, 1, 2, 3])


class TestIsConnected:
    def test_connected(self, path10):
        assert is_connected(path10)

    def test_disconnected(self, disconnected_pattern):
        assert not is_connected(disconnected_pattern)

    def test_single_vertex(self):
        assert is_connected(SymmetricPattern.empty(1))


class TestLargestComponent:
    def test_full_graph(self, cycle12):
        np.testing.assert_array_equal(largest_component(cycle12), np.arange(12))

    def test_disconnected(self):
        edges = [(0, 1), (2, 3), (3, 4)]
        pattern = SymmetricPattern.from_edges(6, edges)
        np.testing.assert_array_equal(largest_component(pattern), [2, 3, 4])


class TestComponentSubpatterns:
    def test_partition_covers_everything(self, disconnected_pattern):
        pieces = component_subpatterns(disconnected_pattern)
        assert len(pieces) == 3
        total_vertices = sorted(
            int(v) for vertices, _ in pieces for v in vertices
        )
        assert total_vertices == list(range(disconnected_pattern.n))

    def test_each_subpattern_is_connected(self, disconnected_pattern):
        for _vertices, sub in component_subpatterns(disconnected_pattern):
            assert is_connected(sub)

    def test_edge_counts_preserved(self, disconnected_pattern):
        pieces = component_subpatterns(disconnected_pattern)
        assert sum(sub.num_edges for _v, sub in pieces) == disconnected_pattern.num_edges


class TestComponentsProperties:
    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_labels_constant_on_edges(self, pattern):
        _, labels = connected_components(pattern)
        for u, v in pattern.edges():
            assert labels[u] == labels[v]

    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_component_count_vs_networkx(self, pattern):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(pattern.n))
        graph.add_edges_from(pattern.edges())
        count, _ = connected_components(pattern)
        assert count == nx.number_connected_components(graph)
