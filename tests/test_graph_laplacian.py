"""Unit tests for repro.graph.laplacian."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.collections.meshes import cycle_pattern, path_pattern
from repro.graph.laplacian import (
    adjacency_matrix,
    laplacian_matrix,
    laplacian_quadratic_form,
    normalized_laplacian_matrix,
)
from repro.sparse.pattern import SymmetricPattern
from tests.conftest import small_patterns


class TestAdjacencyMatrix:
    def test_symmetric_zero_diagonal(self, grid_8x6):
        b = adjacency_matrix(grid_8x6).toarray()
        np.testing.assert_allclose(b, b.T)
        np.testing.assert_allclose(np.diag(b), 0.0)

    def test_entries_are_unit(self, path10):
        b = adjacency_matrix(path10).toarray()
        assert set(np.unique(b)) <= {0.0, 1.0}

    def test_custom_weights(self):
        p = SymmetricPattern.from_edges(2, [(0, 1)])
        b = adjacency_matrix(p, weights=[2.5, 2.5]).toarray()
        assert b[0, 1] == 2.5

    def test_weight_shape_checked(self):
        p = SymmetricPattern.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            adjacency_matrix(p, weights=[1.0])


class TestLaplacianMatrix:
    def test_matches_paper_definition(self, grid_8x6):
        lap = laplacian_matrix(grid_8x6).toarray()
        adj = adjacency_matrix(grid_8x6).toarray()
        degrees = adj.sum(axis=1)
        np.testing.assert_allclose(lap, np.diag(degrees) - adj)

    def test_rows_sum_to_zero(self, geometric200):
        lap = laplacian_matrix(geometric200)
        np.testing.assert_allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0, atol=1e-12)

    def test_positive_semidefinite(self, cycle12):
        values = np.linalg.eigvalsh(laplacian_matrix(cycle12).toarray())
        assert values.min() > -1e-10

    def test_constant_vector_in_null_space(self, grid_8x6):
        lap = laplacian_matrix(grid_8x6)
        np.testing.assert_allclose(lap @ np.ones(grid_8x6.n), 0.0, atol=1e-12)

    def test_second_eigenvalue_positive_iff_connected(self, path10, disconnected_pattern):
        lap_connected = laplacian_matrix(path10).toarray()
        lap_disconnected = laplacian_matrix(disconnected_pattern).toarray()
        assert np.linalg.eigvalsh(lap_connected)[1] > 1e-10
        assert np.linalg.eigvalsh(lap_disconnected)[1] < 1e-10

    def test_path_eigenvalues_closed_form(self):
        # Laplacian eigenvalues of P_n are 2 - 2 cos(pi k / n), k = 0..n-1.
        n = 8
        lap = laplacian_matrix(path_pattern(n)).toarray()
        got = np.sort(np.linalg.eigvalsh(lap))
        expected = np.sort(2.0 - 2.0 * np.cos(np.pi * np.arange(n) / n))
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_cycle_eigenvalues_closed_form(self):
        # Laplacian eigenvalues of C_n are 2 - 2 cos(2 pi k / n).
        n = 9
        lap = laplacian_matrix(cycle_pattern(n)).toarray()
        got = np.sort(np.linalg.eigvalsh(lap))
        expected = np.sort(2.0 - 2.0 * np.cos(2.0 * np.pi * np.arange(n) / n))
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_matches_networkx(self, geometric200):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(geometric200.n))
        graph.add_edges_from(geometric200.edges())
        reference = nx.laplacian_matrix(graph, nodelist=range(geometric200.n)).toarray()
        np.testing.assert_allclose(laplacian_matrix(geometric200).toarray(), reference)


class TestNormalizedLaplacian:
    def test_eigenvalues_in_zero_two(self, geometric200):
        values = np.linalg.eigvalsh(normalized_laplacian_matrix(geometric200).toarray())
        assert values.min() > -1e-10
        assert values.max() < 2.0 + 1e-10

    def test_isolated_vertex_row_is_zero(self):
        p = SymmetricPattern.from_edges(3, [(0, 1)])
        norm = normalized_laplacian_matrix(p).toarray()
        np.testing.assert_allclose(norm[2], 0.0)


class TestQuadraticForm:
    def test_matches_matrix_product(self, grid_8x6, rng):
        x = rng.standard_normal(grid_8x6.n)
        lap = laplacian_matrix(grid_8x6)
        np.testing.assert_allclose(
            laplacian_quadratic_form(grid_8x6, x), float(x @ (lap @ x)), rtol=1e-12
        )

    def test_zero_on_constant_vectors(self, cycle12):
        assert laplacian_quadratic_form(cycle12, np.full(12, 3.7)) == pytest.approx(0.0)

    def test_shape_mismatch(self, path10):
        with pytest.raises(ValueError):
            laplacian_quadratic_form(path10, np.ones(3))

    @given(small_patterns(min_n=2))
    @settings(max_examples=30, deadline=None)
    def test_always_nonnegative(self, pattern):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(pattern.n)
        assert laplacian_quadratic_form(pattern, x) >= -1e-12
