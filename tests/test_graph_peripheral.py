"""Unit tests for repro.graph.peripheral."""

import numpy as np
from hypothesis import given, settings

from repro.collections.meshes import grid2d_pattern, path_pattern, star_pattern
from repro.graph.peripheral import (
    pseudo_diameter,
    pseudo_peripheral_node,
    spectral_pseudo_peripheral_node,
)
from repro.graph.traversal import breadth_first_levels, distance_from
from tests.conftest import small_connected_patterns


class TestPseudoPeripheralNode:
    def test_path_finds_an_endpoint(self, path10):
        node, structure = pseudo_peripheral_node(path10)
        assert node in (0, 9)
        assert structure.height == 9

    def test_star_any_leaf_is_peripheral(self, star9):
        node, structure = pseudo_peripheral_node(star9)
        assert structure.height >= 1

    def test_grid_reaches_a_corner_distance(self):
        grid = grid2d_pattern(7, 11)
        node, structure = pseudo_peripheral_node(grid)
        # eccentricity of a corner of a 7x11 grid is 6 + 10 = 16
        assert structure.height >= 14  # pseudo-peripheral: close to the true diameter

    def test_start_hint_respected(self, path10):
        node, structure = pseudo_peripheral_node(path10, start=5)
        assert structure.height == 9

    def test_returns_structure_rooted_at_node(self, grid_8x6):
        node, structure = pseudo_peripheral_node(grid_8x6)
        reference = breadth_first_levels(grid_8x6, node)
        assert structure.height == reference.height


class TestPseudoDiameter:
    def test_path_endpoints(self, path10):
        u, v, su, sv = pseudo_diameter(path10)
        assert {u, v} == {0, 9}
        assert su.height == 9 and sv.height == 9

    def test_endpoints_are_distant(self):
        grid = grid2d_pattern(9, 5)
        u, v, su, sv = pseudo_diameter(grid)
        dist = distance_from(grid, u)
        true_diameter = 8 + 4
        assert dist[v] >= true_diameter - 2

    def test_distinct_endpoints(self, cycle12):
        u, v, _, _ = pseudo_diameter(cycle12)
        assert u != v


class TestSpectralPseudoPeripheral:
    def test_path_returns_endpointish_vertex(self, path10):
        node = spectral_pseudo_peripheral_node(path10)
        ecc = breadth_first_levels(path10, node).height
        assert ecc >= 7  # close to the true eccentricity 9

    def test_empty_adjacency(self):
        from repro.sparse.pattern import SymmetricPattern

        assert spectral_pseudo_peripheral_node(SymmetricPattern.empty(3)) == 0


class TestPeripheralProperties:
    @given(small_connected_patterns(min_n=2))
    @settings(max_examples=25, deadline=None)
    def test_eccentricity_at_least_half_diameter(self, pattern):
        """A pseudo-peripheral node's eccentricity is >= radius >= diameter/2."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(pattern.n))
        graph.add_edges_from(pattern.edges())
        diameter = nx.diameter(graph)
        _, structure = pseudo_peripheral_node(pattern)
        assert structure.height * 2 >= diameter

    @given(small_connected_patterns(min_n=2))
    @settings(max_examples=25, deadline=None)
    def test_structure_covers_graph(self, pattern):
        _, structure = pseudo_peripheral_node(pattern)
        assert structure.num_reached == pattern.n
