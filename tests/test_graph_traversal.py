"""Unit tests for repro.graph.traversal."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.collections.meshes import grid2d_pattern, path_pattern, star_pattern
from repro.graph.traversal import (
    bfs_order,
    breadth_first_levels,
    distance_from,
    rooted_level_structure,
)
from tests.conftest import small_connected_patterns


class TestBreadthFirstLevels:
    def test_path_levels_are_distances(self, path10):
        structure = breadth_first_levels(path10, 0)
        np.testing.assert_array_equal(structure.level_of, np.arange(10))
        assert structure.height == 9
        assert structure.width == 1
        assert structure.depth == 10

    def test_path_from_middle(self, path10):
        structure = breadth_first_levels(path10, 5)
        assert structure.height == 5  # max(5, 4) hops to the ends... farthest end is 0..5 -> 5 and 9-5=4
        assert structure.level_of[0] == 5
        assert structure.level_of[9] == 4

    def test_star_two_levels(self, star9):
        structure = breadth_first_levels(star9, 0)
        assert structure.height == 1
        assert structure.width == 8

    def test_multi_root(self, path10):
        structure = breadth_first_levels(path10, [0, 9])
        assert structure.height == 5 or structure.height == 4
        assert structure.level_of[0] == 0 and structure.level_of[9] == 0

    def test_unreachable_vertices_marked(self, disconnected_pattern):
        structure = breadth_first_levels(disconnected_pattern, 0)
        assert structure.level_of[8] == -1
        assert structure.level_of[16] == -1
        assert structure.num_reached == 8

    def test_restrict_to_mask(self, path10):
        mask = np.ones(10, dtype=bool)
        mask[5] = False  # cut the path at vertex 5
        structure = breadth_first_levels(path10, 0, restrict_to=mask)
        assert structure.num_reached == 5
        assert structure.level_of[6] == -1

    def test_level_widths_sum_to_reached(self, grid_8x6):
        structure = breadth_first_levels(grid_8x6, 0)
        assert structure.level_widths.sum() == grid_8x6.n

    def test_out_of_range_root(self, path10):
        with pytest.raises(ValueError):
            breadth_first_levels(path10, 99)

    def test_vertices_returns_all_levels(self, grid_8x6):
        structure = breadth_first_levels(grid_8x6, 3)
        assert sorted(structure.vertices().tolist()) == list(range(grid_8x6.n))

    def test_rooted_level_structure_alias(self, path10):
        a = rooted_level_structure(path10, 2)
        b = breadth_first_levels(path10, 2)
        np.testing.assert_array_equal(a.level_of, b.level_of)


class TestBfsOrder:
    def test_covers_component(self, grid_8x6):
        order = bfs_order(grid_8x6, 0)
        assert sorted(order.tolist()) == list(range(grid_8x6.n))

    def test_starts_at_root(self, grid_8x6):
        assert bfs_order(grid_8x6, 17)[0] == 17

    def test_levels_are_nondecreasing_along_order(self, grid_8x6):
        order = bfs_order(grid_8x6, 0)
        levels = breadth_first_levels(grid_8x6, 0).level_of
        assert np.all(np.diff(levels[order]) >= 0)

    def test_degree_sorted_enqueue(self):
        # Star with an extra pendant: from the centre, neighbours should be
        # enqueued lowest-degree first.
        pattern = star_pattern(5)
        order = bfs_order(pattern, 0, sort_by_degree=True)
        assert order[0] == 0
        assert sorted(order[1:].tolist()) == [1, 2, 3, 4]

    def test_only_component_returned(self, disconnected_pattern):
        order = bfs_order(disconnected_pattern, 0)
        assert sorted(order.tolist()) == list(range(8))

    def test_invalid_root(self, path10):
        with pytest.raises(ValueError):
            bfs_order(path10, -1)


class TestDistanceFrom:
    def test_path_distances(self, path10):
        np.testing.assert_array_equal(distance_from(path10, 0), np.arange(10))

    def test_grid_distance_is_manhattan(self):
        grid = grid2d_pattern(5, 7)
        dist = distance_from(grid, 0)
        # vertex (i, j) has index i*7+j; distance from (0,0) is i+j
        for i in range(5):
            for j in range(7):
                assert dist[i * 7 + j] == i + j

    def test_unreachable_is_minus_one(self, disconnected_pattern):
        assert distance_from(disconnected_pattern, 0)[16] == -1


class TestTraversalProperties:
    @given(small_connected_patterns())
    @settings(max_examples=30, deadline=None)
    def test_bfs_levels_differ_by_at_most_one_across_edges(self, pattern):
        structure = breadth_first_levels(pattern, 0)
        levels = structure.level_of
        for u, v in pattern.edges():
            assert abs(int(levels[u]) - int(levels[v])) <= 1

    @given(small_connected_patterns())
    @settings(max_examples=30, deadline=None)
    def test_bfs_order_is_permutation_of_component(self, pattern):
        order = bfs_order(pattern, 0, sort_by_degree=True)
        assert sorted(order.tolist()) == list(range(pattern.n))

    @given(small_connected_patterns())
    @settings(max_examples=30, deadline=None)
    def test_path_property_of_levels(self, pattern):
        # every vertex at level k>0 has a neighbour at level k-1
        structure = breadth_first_levels(pattern, 0)
        levels = structure.level_of
        for v in range(pattern.n):
            if levels[v] > 0:
                nbr_levels = levels[pattern.neighbors(v)]
                assert (nbr_levels == levels[v] - 1).any()
