"""Integration tests reproducing the paper's qualitative findings end to end.

These are the "shape" checks of the evaluation section on laptop-sized
surrogates:

* Section 4 / Tables 4.1-4.3 — the spectral ordering usually gives the
  smallest envelope of the four algorithms, and wins clearly on unstructured
  meshes (BARTH4 family), while GPS/RCM give smaller bandwidths;
* Table 4.4 — envelope factorization work tracks the envelope size, so the
  spectral reordering reduces factorization cost versus RCM whenever it
  reduces the envelope;
* Figures 4.1-4.5 — the spectral reordering produces a visibly different
  nonzero profile from the local (GK/GPS/RCM) reorderings.
"""

import numpy as np
import pytest

from repro.analysis.runner import run_comparison
from repro.analysis.spy import band_profile, density_grid
from repro.collections.registry import load_problem
from repro.envelope.metrics import envelope_size
from repro.factor.cholesky import envelope_cholesky
from repro.orderings.registry import ORDERING_ALGORITHMS

SCALE = 0.03  # tiny surrogates keep the integration suite fast
BARTH4_SCALE = 0.08  # the BARTH4 shape checks need a slightly larger mesh for
                     # the spectral-vs-RCM margin to emerge clearly


@pytest.fixture(scope="module")
def barth4():
    pattern, spec = load_problem("BARTH4", scale=BARTH4_SCALE)
    return pattern


@pytest.fixture(scope="module")
def barth4_comparison(barth4):
    return run_comparison(barth4, problem="BARTH4")


class TestTableShape:
    def test_barth4_spectral_wins_envelope(self, barth4_comparison):
        """Table 4.3: SPECTRAL has rank 1 on BARTH4 by a wide margin."""
        rows = {r.algorithm: r for r in barth4_comparison.rows}
        assert rows["spectral"].rank == 1
        assert rows["spectral"].envelope_size < rows["rcm"].envelope_size
        assert rows["spectral"].envelope_size < rows["gps"].envelope_size
        assert rows["spectral"].envelope_size < rows["gk"].envelope_size

    def test_barth4_margin_is_substantial(self, barth4_comparison):
        """The paper reports a ~2x envelope reduction vs RCM on BARTH4."""
        rows = {r.algorithm: r for r in barth4_comparison.rows}
        assert rows["rcm"].envelope_size >= 1.3 * rows["spectral"].envelope_size

    def test_local_methods_win_bandwidth(self, barth4_comparison):
        """Section 4: 'the bandwidths of the spectral reorderings are often
        much greater than those of the other reorderings'."""
        rows = {r.algorithm: r for r in barth4_comparison.rows}
        best_local_bw = min(rows["gps"].bandwidth, rows["gk"].bandwidth, rows["rcm"].bandwidth)
        assert rows["spectral"].bandwidth >= best_local_bw

    def test_power_network_spectral_wins(self):
        """Table 4.2: POW9 shows the largest spectral advantage (>2x vs RCM)."""
        pattern, _ = load_problem("POW9", scale=SCALE)
        result = run_comparison(pattern, problem="POW9")
        rows = {r.algorithm: r for r in result.rows}
        assert rows["spectral"].envelope_size < rows["rcm"].envelope_size

    def test_every_algorithm_beats_random_on_misc_suite(self):
        for name in ("DWT2680", "BLKHOLE"):
            pattern, _ = load_problem(name, scale=SCALE)
            random_env = envelope_size(
                pattern, ORDERING_ALGORITHMS["random"](pattern, rng=0).perm
            )
            for algorithm in ("spectral", "gk", "gps", "rcm"):
                ordering = ORDERING_ALGORITHMS[algorithm](pattern)
                assert envelope_size(pattern, ordering.perm) < random_env


class TestFactorizationShape:
    def test_factor_cost_tracks_envelope(self, barth4):
        """Table 4.4: the envelope factorization cost is driven by the
        envelope size, so the spectral reordering reduces it versus RCM."""
        matrix = barth4.to_scipy("spd")
        results = {}
        for name in ("spectral", "rcm"):
            ordering = ORDERING_ALGORITHMS[name](barth4)
            chol = envelope_cholesky(matrix, perm=ordering.perm)
            results[name] = (envelope_size(barth4, ordering.perm), chol.operations)
        assert results["spectral"][0] < results["rcm"][0]
        assert results["spectral"][1] < results["rcm"][1]

    def test_solution_correct_under_both_orderings(self, barth4):
        matrix = barth4.to_scipy("spd")
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(barth4.n)
        b = matrix @ x_true
        from repro.factor.solve import envelope_solve

        for name in ("spectral", "rcm"):
            ordering = ORDERING_ALGORITHMS[name](barth4)
            result = envelope_solve(matrix, b, ordering=ordering)
            np.testing.assert_allclose(result.x, x_true, atol=1e-6)


class TestFigureShape:
    def test_spectral_profile_differs_from_local_profiles(self, barth4, barth4_comparison):
        """Figures 4.2-4.5: GK/GPS/RCM spy plots look alike; SPECTRAL's differs."""
        grids = {
            name: density_grid(barth4, ordering.perm, resolution=16).astype(float)
            for name, ordering in barth4_comparison.orderings.items()
        }

        def distance(a, b):
            return np.abs(grids[a] - grids[b]).sum()

        local_spread = max(distance("gps", "rcm"), distance("gps", "gk"), distance("gk", "rcm"))
        spectral_gap = min(distance("spectral", x) for x in ("gps", "gk", "rcm"))
        assert spectral_gap > 0
        assert spectral_gap >= 0.5 * local_spread

    def test_band_profiles_quantify_figures(self, barth4, barth4_comparison):
        profiles = {
            name: band_profile(barth4, ordering.perm)
            for name, ordering in barth4_comparison.orderings.items()
        }
        # Spectral: smaller area (envelope), usually wider extreme rows.
        assert profiles["spectral"]["envelope_size"] <= profiles["rcm"]["envelope_size"]
        assert profiles["spectral"]["mean_row_width"] <= profiles["rcm"]["mean_row_width"]
