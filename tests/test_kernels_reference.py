"""Equivalence of the vectorized hot-path kernels with their naive references.

The vectorized kernels (whole-frontier BFS, round-based MIS, slab-reduced
level numbering, batched Sloan updates, ...) promise **bit-identical** output
to the vertex-at-a-time implementations retained in :mod:`repro.reference`.
These property tests enforce the promise two ways:

* kernel by kernel, on a corpus of random graphs (connected, disconnected,
  edgeless, path/star shapes);
* end to end: every registered ordering algorithm is run once normally and
  once with the reference kernels monkeypatched in, and the permutations must
  match exactly — including on disconnected patterns.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.graph.components
import repro.graph.coarsen
import repro.graph.peripheral
import repro.graph.traversal
import repro.orderings.base
import repro.orderings.cuthill_mckee
import repro.orderings.gibbs_king
import repro.orderings.gps
import repro.orderings.king
import repro.orderings.sloan
from repro import reference
from repro.graph.coarsen import _grow_domains, maximal_independent_set
from repro.graph.components import connected_components
from repro.graph.traversal import bfs_order, breadth_first_levels
from repro.orderings.gps import number_by_levels
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.orderings.sloan import _sloan_component
from repro.sparse.pattern import SymmetricPattern


def random_pattern(rng: np.random.Generator, n: int, density: float) -> SymmetricPattern:
    m = int(density * n)
    if m == 0:
        return SymmetricPattern.empty(n)
    edges = rng.integers(0, n, size=(m, 2))
    return SymmetricPattern.from_edge_arrays(n, edges[:, 0], edges[:, 1])


def corpus() -> list[SymmetricPattern]:
    """A deterministic mix of shapes: sparse/dense random graphs (many of
    them disconnected), an edgeless pattern, a path, and a star."""
    rng = np.random.default_rng(20260729)
    patterns = [
        random_pattern(rng, int(rng.integers(2, 60)), float(rng.uniform(0.0, 3.5)))
        for _ in range(24)
    ]
    patterns.append(SymmetricPattern.empty(7))
    n = 31
    patterns.append(SymmetricPattern.from_edges(n, [(i, i + 1) for i in range(n - 1)]))
    patterns.append(SymmetricPattern.from_edges(n, [(0, i) for i in range(1, n)]))
    return patterns


CORPUS = corpus()
CONNECTED = [p for p in CORPUS if p.n and connected_components(p)[0] == 1]


def assert_structure_equal(a, b):
    assert np.array_equal(a.level_of, b.level_of)
    assert len(a.levels) == len(b.levels)
    for la, lb in zip(a.levels, b.levels):
        assert np.array_equal(np.asarray(la), np.asarray(lb))


@pytest.mark.parametrize("index", range(len(CORPUS)), ids=lambda i: f"graph{i}")
def test_bfs_kernels_match_reference(index):
    pattern = CORPUS[index]
    rng = np.random.default_rng(index)
    root = int(rng.integers(0, pattern.n))
    assert_structure_equal(
        breadth_first_levels(pattern, root),
        reference.breadth_first_levels_reference(pattern, root),
    )
    # multi-rooted + restricted variant (the GPS combined-structure shape)
    roots = rng.integers(0, pattern.n, size=2)
    mask = rng.random(pattern.n) < 0.8
    assert_structure_equal(
        breadth_first_levels(pattern, roots, restrict_to=mask),
        reference.breadth_first_levels_reference(pattern, roots, restrict_to=mask),
    )
    for sort_by_degree in (False, True):
        assert np.array_equal(
            bfs_order(pattern, root, sort_by_degree=sort_by_degree),
            reference.bfs_order_reference(pattern, root, sort_by_degree=sort_by_degree),
        )


@pytest.mark.parametrize("index", range(len(CORPUS)), ids=lambda i: f"graph{i}")
def test_components_and_subpattern_match_reference(index):
    pattern = CORPUS[index]
    count, labels = connected_components(pattern)
    ref_count, ref_labels = reference.connected_components_reference(pattern)
    assert count == ref_count
    assert np.array_equal(labels, ref_labels)

    rng = np.random.default_rng(1000 + index)
    subset = rng.permutation(pattern.n)[: int(rng.integers(0, pattern.n + 1))]
    assert pattern.subpattern(subset) == reference.subpattern_reference(pattern, subset)


@pytest.mark.parametrize("strategy", ["degree", "natural", "random"])
@pytest.mark.parametrize("index", range(len(CORPUS)), ids=lambda i: f"graph{i}")
def test_mis_and_domain_growth_match_reference(index, strategy):
    pattern = CORPUS[index]
    mis = maximal_independent_set(
        pattern, rng=np.random.default_rng(index), strategy=strategy
    )
    ref = reference.maximal_independent_set_reference(
        pattern, rng=np.random.default_rng(index), strategy=strategy
    )
    assert np.array_equal(mis, ref)

    domain_of = np.full(pattern.n, -1, dtype=np.intp)
    domain_of[mis] = np.arange(mis.size, dtype=np.intp)
    _grow_domains(pattern, mis, domain_of)
    assert np.array_equal(domain_of, reference.grow_domains_reference(pattern, mis))


def test_mis_greedy_tail_matches_reference_on_adversarial_rank():
    # A long path scanned along its length decides O(1) vertices per round,
    # forcing the sequential-tail fallback of the round-based MIS.
    n = 400
    pattern = SymmetricPattern.from_edges(n, [(i, i + 1) for i in range(n - 1)])
    mis = maximal_independent_set(pattern, strategy="natural")
    ref = reference.maximal_independent_set_reference(pattern, strategy="natural")
    assert np.array_equal(mis, ref)
    assert np.array_equal(mis, np.arange(0, n, 2))


@pytest.mark.parametrize("tie_break", ["degree", "king"])
@pytest.mark.parametrize("index", range(len(CONNECTED)), ids=lambda i: f"conn{i}")
def test_number_by_levels_matches_reference(index, tie_break):
    pattern = CONNECTED[index]
    rng = np.random.default_rng(2000 + index)
    root = int(rng.integers(0, pattern.n))
    levels = breadth_first_levels(pattern, root).level_of.copy()
    levels[levels < 0] = int(levels.max(initial=0)) + 1
    assert np.array_equal(
        number_by_levels(pattern, levels, root, tie_break=tie_break),
        reference.number_by_levels_reference(pattern, levels, root, tie_break=tie_break),
    )


@pytest.mark.parametrize("weights", [(2, 1), (1, 2), (0, 1), (16, 1), (1, 0)])
@pytest.mark.parametrize("index", range(len(CONNECTED)), ids=lambda i: f"conn{i}")
def test_sloan_component_matches_reference(index, weights):
    pattern = CONNECTED[index]
    if pattern.n < 2:
        pytest.skip("component kernels need n >= 2")
    w1, w2 = weights
    assert np.array_equal(
        _sloan_component(pattern, w1, w2),
        reference.sloan_component_reference(pattern, w1, w2),
    )


# --------------------------------------------------------------------- #
# end-to-end: all registered algorithms with the reference kernels
# patched in must reproduce the production orderings exactly
# --------------------------------------------------------------------- #
def _patch_reference_kernels(monkeypatch) -> None:
    def grow_domains_inplace(pattern, mis, domain_of):
        domain_of[:] = reference.grow_domains_reference(pattern, mis)

    monkeypatch.setattr(repro.graph.traversal, "breadth_first_levels",
                        reference.breadth_first_levels_reference)
    monkeypatch.setattr(repro.graph.peripheral, "breadth_first_levels",
                        reference.breadth_first_levels_reference)
    monkeypatch.setattr(repro.orderings.cuthill_mckee, "bfs_order",
                        reference.bfs_order_reference)
    for module in (repro.orderings.gps, repro.orderings.king, repro.orderings.gibbs_king):
        monkeypatch.setattr(module, "number_by_levels",
                            reference.number_by_levels_reference)
    monkeypatch.setattr(repro.orderings.sloan, "_sloan_component",
                        reference.sloan_component_reference)
    monkeypatch.setattr(repro.graph.coarsen, "maximal_independent_set",
                        reference.maximal_independent_set_reference)
    monkeypatch.setattr(repro.graph.coarsen, "_grow_domains", grow_domains_inplace)
    # order_by_components now routes through the spectral workspace, whose
    # lazy import reads repro.graph.components at call time — patching the
    # source module covers it.
    for module in (repro.graph.components, repro.orderings.gps):
        monkeypatch.setattr(module, "connected_components",
                            reference.connected_components_reference)
    monkeypatch.setattr(SymmetricPattern, "subpattern", reference.subpattern_reference)


@pytest.mark.parametrize("algorithm", sorted(ORDERING_ALGORITHMS))
def test_registered_algorithms_unchanged_by_kernel_vectorization(algorithm):
    """Every registered ordering — on connected *and* disconnected patterns —
    is bit-identical whether built on the vectorized or the naive kernels."""
    func = ORDERING_ALGORITHMS[algorithm]
    rng = np.random.default_rng(99)
    patterns = [
        random_pattern(rng, 30, 1.2),   # disconnected with high probability
        random_pattern(rng, 24, 2.5),
        SymmetricPattern.from_edges(
            17, [(i, i + 1) for i in range(7)] + [(9 + i, 9 + (i + 1) % 5) for i in range(5)]
        ),                              # two components + isolated vertices
    ]
    for seed, pattern in enumerate(patterns):
        kwargs = {"rng": np.random.default_rng(seed)} if algorithm == "random" else {}
        fast = func(pattern, **kwargs)
        with pytest.MonkeyPatch.context() as context:
            _patch_reference_kernels(context)
            kwargs = {"rng": np.random.default_rng(seed)} if algorithm == "random" else {}
            # A fresh copy so the naive run cannot reuse the fast run's
            # memoized workspace (component split, Laplacian, hierarchy) —
            # the reference kernels must actually execute.
            naive = func(pattern.copy(), **kwargs)
        assert np.array_equal(fast.perm, naive.perm), (
            f"{algorithm} diverged from the reference kernels on pattern #{seed}"
        )
