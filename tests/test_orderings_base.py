"""Unit tests for repro.orderings.base."""

import numpy as np
import pytest

from repro.orderings.base import Ordering, identity_ordering, order_by_components, random_ordering
from repro.sparse.pattern import SymmetricPattern


class TestOrdering:
    def test_validates_permutation(self):
        with pytest.raises(ValueError):
            Ordering(np.array([0, 0, 1]))

    def test_positions_is_inverse(self):
        ordering = Ordering(np.array([2, 0, 3, 1]))
        positions = ordering.positions
        np.testing.assert_array_equal(positions[ordering.perm], np.arange(4))

    def test_reversed(self):
        ordering = Ordering(np.array([2, 0, 1]), algorithm="cm")
        rev = ordering.reversed()
        np.testing.assert_array_equal(rev.perm, [1, 0, 2])
        assert rev.algorithm == "reverse-cm"

    def test_compose(self):
        a = Ordering(np.array([1, 2, 0]))
        b = Ordering(np.array([2, 0, 1]))
        composed = a.compose(b)
        np.testing.assert_array_equal(composed.perm, b.perm[a.perm])

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            Ordering(np.arange(3)).compose(Ordering(np.arange(4)))

    def test_apply_to_pattern(self):
        pattern = SymmetricPattern.from_edges(3, [(0, 1)])
        ordering = Ordering(np.array([2, 1, 0]))
        permuted = ordering.apply_to(pattern)
        assert permuted.has_edge(1, 2)

    def test_apply_to_matrix(self, spd_grid_matrix):
        n = spd_grid_matrix.shape[0]
        ordering = random_ordering(n, rng=1)
        permuted = ordering.apply_to(spd_grid_matrix)
        expected = spd_grid_matrix[ordering.perm][:, ordering.perm]
        np.testing.assert_allclose(permuted.toarray(), expected.toarray())

    def test_is_identity(self):
        assert identity_ordering(5).is_identity()
        assert not Ordering(np.array([1, 0])).is_identity()

    def test_len_and_repr(self):
        ordering = identity_ordering(7)
        assert len(ordering) == 7
        assert "n=7" in repr(ordering)

    def test_metadata_default_independent(self):
        a = Ordering(np.arange(2))
        b = Ordering(np.arange(2))
        a.metadata["x"] = 1
        assert "x" not in b.metadata


class TestFactories:
    def test_identity(self):
        np.testing.assert_array_equal(identity_ordering(4).perm, np.arange(4))

    def test_random_is_permutation_and_deterministic(self):
        a = random_ordering(20, rng=3)
        b = random_ordering(20, rng=3)
        np.testing.assert_array_equal(a.perm, b.perm)
        assert sorted(a.perm.tolist()) == list(range(20))


class TestOrderByComponents:
    def test_single_component_passthrough(self, path10):
        ordering = order_by_components(path10, lambda sub: np.arange(sub.n)[::-1], "rev")
        np.testing.assert_array_equal(ordering.perm, np.arange(10)[::-1])
        assert ordering.metadata["num_components"] == 1

    def test_components_ordered_independently(self, disconnected_pattern):
        ordering = order_by_components(
            disconnected_pattern, lambda sub: np.arange(sub.n), "identity-per-component"
        )
        assert ordering.metadata["num_components"] == 3
        # the per-component identity keeps original vertex order within each component
        np.testing.assert_array_equal(ordering.perm, np.arange(17))

    def test_component_ordering_is_applied_locally(self, disconnected_pattern):
        ordering = order_by_components(
            disconnected_pattern, lambda sub: np.arange(sub.n)[::-1], "rev"
        )
        # first component (vertices 0..7) reversed, then second reversed, then the singleton
        expected = list(range(7, -1, -1)) + list(range(15, 7, -1)) + [16]
        np.testing.assert_array_equal(ordering.perm, expected)

    def test_result_is_valid_permutation(self, disconnected_pattern):
        ordering = order_by_components(
            disconnected_pattern, lambda sub: np.random.default_rng(0).permutation(sub.n), "rand"
        )
        assert sorted(ordering.perm.tolist()) == list(range(17))

    def test_empty_pattern(self):
        ordering = order_by_components(SymmetricPattern.empty(0), lambda sub: np.arange(sub.n), "x")
        assert ordering.n == 0

    def test_invalid_component_ordering_rejected(self, path10):
        with pytest.raises(ValueError):
            order_by_components(path10, lambda sub: np.zeros(sub.n, dtype=int), "broken")
