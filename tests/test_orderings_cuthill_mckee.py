"""Unit tests for Cuthill-McKee and RCM (repro.orderings.cuthill_mckee)."""

import numpy as np
import pytest
from hypothesis import given, settings
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.envelope.metrics import bandwidth, envelope_size
from repro.envelope.theory import is_adjacency_ordering
from repro.orderings.cuthill_mckee import cuthill_mckee_ordering, rcm_ordering
from tests.conftest import small_connected_patterns


class TestCuthillMcKee:
    def test_path_natural_bandwidth(self, path10):
        ordering = cuthill_mckee_ordering(path10)
        assert bandwidth(path10, ordering.perm) == 1

    def test_is_adjacency_ordering(self, grid_8x6):
        ordering = cuthill_mckee_ordering(grid_8x6)
        assert is_adjacency_ordering(grid_8x6, ordering.perm)

    def test_start_vertex_honoured(self, grid_8x6):
        ordering = cuthill_mckee_ordering(grid_8x6, start=17)
        assert ordering.perm[0] == 17

    def test_permutation_valid(self, geometric200):
        ordering = cuthill_mckee_ordering(geometric200)
        assert sorted(ordering.perm.tolist()) == list(range(geometric200.n))

    def test_algorithm_name(self, path10):
        assert cuthill_mckee_ordering(path10).algorithm == "cuthill-mckee"

    @given(small_connected_patterns())
    @settings(max_examples=30, deadline=None)
    def test_cm_is_always_adjacency_ordering(self, pattern):
        ordering = cuthill_mckee_ordering(pattern)
        assert is_adjacency_ordering(pattern, ordering.perm)


class TestRCM:
    def test_is_reverse_of_cm(self, grid_8x6):
        cm = cuthill_mckee_ordering(grid_8x6, start=0)
        rcm = rcm_ordering(grid_8x6, start=0)
        np.testing.assert_array_equal(rcm.perm, cm.perm[::-1])

    def test_reduces_grid_bandwidth(self):
        # natural ordering of a 20x6 grid (row-major over the long axis) has
        # bandwidth 6; RCM should give bandwidth about min(nx, ny).
        grid = grid2d_pattern(20, 6)
        ordering = rcm_ordering(grid)
        assert bandwidth(grid, ordering.perm) <= 8

    def test_reduces_envelope_vs_random(self, geometric200):
        from repro.orderings.base import random_ordering

        rcm = rcm_ordering(geometric200)
        rand = random_ordering(geometric200.n, rng=0)
        assert envelope_size(geometric200, rcm.perm) < envelope_size(geometric200, rand.perm)

    def test_comparable_to_scipy_rcm(self, geometric200):
        """Our RCM and SciPy's must produce envelopes of the same order."""
        ours = envelope_size(geometric200, rcm_ordering(geometric200).perm)
        scipy_perm = reverse_cuthill_mckee(geometric200.to_scipy("pattern"), symmetric_mode=True)
        theirs = envelope_size(geometric200, np.asarray(scipy_perm, dtype=np.intp))
        assert ours <= 1.5 * theirs

    def test_handles_disconnected(self, disconnected_pattern):
        ordering = rcm_ordering(disconnected_pattern)
        assert sorted(ordering.perm.tolist()) == list(range(17))
        assert ordering.metadata["num_components"] == 3

    def test_algorithm_name(self, path10):
        assert rcm_ordering(path10).algorithm == "rcm"

    def test_single_vertex(self):
        from repro.sparse.pattern import SymmetricPattern

        ordering = rcm_ordering(SymmetricPattern.empty(1))
        np.testing.assert_array_equal(ordering.perm, [0])

    @given(small_connected_patterns())
    @settings(max_examples=30, deadline=None)
    def test_rcm_perm_is_valid(self, pattern):
        ordering = rcm_ordering(pattern)
        assert sorted(ordering.perm.tolist()) == list(range(pattern.n))
