"""Unit tests for the Gibbs-King ordering (repro.orderings.gibbs_king)."""

import numpy as np
from hypothesis import given, settings

from repro.collections.generators import annulus_pattern
from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.envelope.metrics import bandwidth, envelope_size
from repro.orderings.base import random_ordering
from repro.orderings.gibbs_king import gibbs_king_ordering
from repro.orderings.gps import gps_ordering
from tests.conftest import small_connected_patterns


class TestGibbsKing:
    def test_path_is_optimal(self, path10):
        ordering = gibbs_king_ordering(path10)
        assert envelope_size(path10, ordering.perm) == 9
        assert bandwidth(path10, ordering.perm) == 1

    def test_valid_permutation(self, grid_12x9):
        ordering = gibbs_king_ordering(grid_12x9)
        assert sorted(ordering.perm.tolist()) == list(range(grid_12x9.n))

    def test_beats_random(self, geometric200):
        gk = gibbs_king_ordering(geometric200)
        rand = random_ordering(geometric200.n, rng=5)
        assert envelope_size(geometric200, gk.perm) < envelope_size(geometric200, rand.perm)

    def test_envelope_competitive_with_gps(self):
        # The paper: "the GK algorithm yields a lower envelope size" than GPS;
        # our implementations should at least be comparable (within 25%).
        pattern = annulus_pattern(8, 40)
        gk = envelope_size(pattern, gibbs_king_ordering(pattern).perm)
        gps = envelope_size(pattern, gps_ordering(pattern).perm)
        assert gk <= 1.25 * gps

    def test_grid_envelope_reasonable(self):
        grid = grid2d_pattern(15, 8)
        gk = gibbs_king_ordering(grid)
        # lower bound: each interior row needs width >= min dimension - small constant
        assert envelope_size(grid, gk.perm) <= 15 * 8 * 10

    def test_disconnected_handled(self, disconnected_pattern):
        ordering = gibbs_king_ordering(disconnected_pattern)
        assert sorted(ordering.perm.tolist()) == list(range(17))
        assert ordering.metadata["num_components"] == 3

    def test_algorithm_name(self, path10):
        assert gibbs_king_ordering(path10).algorithm == "gk"

    def test_deterministic(self, geometric200):
        a = gibbs_king_ordering(geometric200)
        b = gibbs_king_ordering(geometric200)
        np.testing.assert_array_equal(a.perm, b.perm)

    @given(small_connected_patterns())
    @settings(max_examples=25, deadline=None)
    def test_always_valid_permutation(self, pattern):
        ordering = gibbs_king_ordering(pattern)
        assert sorted(ordering.perm.tolist()) == list(range(pattern.n))
