"""Unit tests for the Gibbs-Poole-Stockmeyer ordering (repro.orderings.gps)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.envelope.metrics import bandwidth, envelope_size
from repro.orderings.base import random_ordering
from repro.orderings.cuthill_mckee import rcm_ordering
from repro.orderings.gps import combined_level_structure, gps_ordering, number_by_levels
from tests.conftest import small_connected_patterns


class TestCombinedLevelStructure:
    def test_path_levels_are_positions(self, path10):
        levels, height, start, end = combined_level_structure(path10)
        assert height == 9
        assert {start, end} == {0, 9}
        # levels along a path must be exactly the distance from the start
        expected = np.abs(np.arange(10) - start)
        np.testing.assert_array_equal(levels, expected)

    def test_every_vertex_assigned(self, grid_12x9):
        levels, height, start, end = combined_level_structure(grid_12x9)
        assert levels.min() >= 0
        assert levels.max() == height
        assert start != end

    def test_adjacent_levels_differ_by_at_most_one_on_grid(self, grid_8x6):
        levels, _, _, _ = combined_level_structure(grid_8x6)
        violations = sum(
            1 for u, v in grid_8x6.edges() if abs(int(levels[u]) - int(levels[v])) > 1
        )
        # The combined structure is not a BFS leveling, but on a regular grid
        # almost every edge should stay within adjacent levels.
        assert violations <= grid_8x6.num_edges // 10

    def test_start_has_level_zero(self, grid_8x6):
        levels, _, start, _ = combined_level_structure(grid_8x6)
        assert levels[start] == 0

    def test_single_vertex(self):
        from repro.sparse.pattern import SymmetricPattern

        levels, height, start, end = combined_level_structure(SymmetricPattern.empty(1))
        assert height == 0 and start == 0 and end == 0


class TestNumberByLevels:
    def test_produces_permutation(self, grid_8x6):
        levels, _, start, _ = combined_level_structure(grid_8x6)
        order = number_by_levels(grid_8x6, levels, start)
        assert sorted(order.tolist()) == list(range(grid_8x6.n))

    def test_level_values_nondecreasing_along_numbering(self, grid_8x6):
        levels, _, start, _ = combined_level_structure(grid_8x6)
        order = number_by_levels(grid_8x6, levels, start)
        assert np.all(np.diff(levels[order]) >= 0)

    def test_king_rule_also_valid(self, grid_8x6):
        levels, _, start, _ = combined_level_structure(grid_8x6)
        order = number_by_levels(grid_8x6, levels, start, tie_break="king")
        assert sorted(order.tolist()) == list(range(grid_8x6.n))

    def test_unknown_tie_break(self, path10):
        levels, _, start, _ = combined_level_structure(path10)
        with pytest.raises(ValueError):
            number_by_levels(path10, levels, start, tie_break="nope")


class TestGPSOrdering:
    def test_path_is_optimal(self, path10):
        ordering = gps_ordering(path10)
        assert bandwidth(path10, ordering.perm) == 1
        assert envelope_size(path10, ordering.perm) == 9

    def test_grid_bandwidth_close_to_short_dimension(self):
        grid = grid2d_pattern(25, 7)
        ordering = gps_ordering(grid)
        assert bandwidth(grid, ordering.perm) <= 10

    def test_beats_random_ordering(self, geometric200):
        gps = gps_ordering(geometric200)
        rand = random_ordering(geometric200.n, rng=2)
        assert envelope_size(geometric200, gps.perm) < envelope_size(geometric200, rand.perm)
        assert bandwidth(geometric200, gps.perm) < bandwidth(geometric200, rand.perm)

    def test_bandwidth_competitive_with_rcm(self, geometric200):
        # The paper: "Generally the GPS algorithm yields a lower bandwidth".
        # Allow slack but require the same order of magnitude.
        gps_bw = bandwidth(geometric200, gps_ordering(geometric200).perm)
        rcm_bw = bandwidth(geometric200, rcm_ordering(geometric200).perm)
        assert gps_bw <= 1.5 * rcm_bw

    def test_disconnected_handled(self, disconnected_pattern):
        ordering = gps_ordering(disconnected_pattern)
        assert sorted(ordering.perm.tolist()) == list(range(17))

    def test_algorithm_name(self, path10):
        assert gps_ordering(path10).algorithm == "gps"

    @given(small_connected_patterns())
    @settings(max_examples=25, deadline=None)
    def test_always_valid_permutation(self, pattern):
        ordering = gps_ordering(pattern)
        assert sorted(ordering.perm.tolist()) == list(range(pattern.n))
