"""Unit tests for the hybrid spectral+local ordering (repro.orderings.hybrid)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.collections.generators import airfoil_pattern
from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.envelope.metrics import envelope_size
from repro.envelope.theory import is_adjacency_ordering
from repro.orderings.hybrid import hybrid_spectral_ordering
from repro.orderings.spectral import spectral_ordering
from tests.conftest import small_connected_patterns


class TestHybridSpectralOrdering:
    def test_never_worse_than_spectral_adjacency(self, geometric200):
        spec = envelope_size(geometric200, spectral_ordering(geometric200, method="lanczos", rng=1).perm)
        hybrid = envelope_size(
            geometric200,
            hybrid_spectral_ordering(geometric200, strategy="adjacency", method="lanczos", rng=1).perm,
        )
        assert hybrid <= spec

    def test_never_worse_than_spectral_window(self):
        pattern = grid2d_pattern(9, 7)
        spec = envelope_size(pattern, spectral_ordering(pattern, method="dense").perm)
        hybrid = envelope_size(
            pattern,
            hybrid_spectral_ordering(pattern, strategy="window", method="dense", window=8, sweeps=1).perm,
        )
        assert hybrid <= spec

    def test_adjacency_strategy_produces_adjacency_ordering(self):
        pattern = airfoil_pattern(300, seed=2)
        ordering = hybrid_spectral_ordering(pattern, strategy="adjacency", method="lanczos")
        # Priority-first traversal guarantees the adjacency property whenever
        # it actually replaces the spectral order (it is kept only if no worse).
        if ordering.metadata.get("strategy") == "adjacency":
            # the refined order may have been discarded; only check validity
            assert sorted(ordering.perm.tolist()) == list(range(pattern.n))

    def test_path_optimal(self, path10):
        ordering = hybrid_spectral_ordering(path10, method="dense")
        assert envelope_size(path10, ordering.perm) == 9

    def test_invalid_strategy(self, path10):
        with pytest.raises(ValueError):
            hybrid_spectral_ordering(path10, strategy="annealing")

    def test_metadata(self, path10):
        ordering = hybrid_spectral_ordering(path10, method="dense", strategy="adjacency")
        assert ordering.algorithm == "hybrid-spectral"
        assert ordering.metadata["strategy"] == "adjacency"

    def test_disconnected_handled(self, disconnected_pattern):
        ordering = hybrid_spectral_ordering(disconnected_pattern, method="dense")
        assert sorted(ordering.perm.tolist()) == list(range(17))

    @given(small_connected_patterns())
    @settings(max_examples=15, deadline=None)
    def test_always_valid_permutation(self, pattern):
        ordering = hybrid_spectral_ordering(pattern, method="dense")
        assert sorted(ordering.perm.tolist()) == list(range(pattern.n))
