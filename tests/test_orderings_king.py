"""Unit tests for King's ordering (repro.orderings.king)."""

import numpy as np
from hypothesis import given, settings

from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.envelope.metrics import envelope_size, frontwidths
from repro.orderings.base import random_ordering
from repro.orderings.king import king_ordering, reverse_king_ordering
from tests.conftest import small_connected_patterns


class TestKingOrdering:
    def test_path_is_optimal(self, path10):
        ordering = king_ordering(path10)
        assert envelope_size(path10, ordering.perm) == 9

    def test_valid_permutation(self, grid_12x9):
        ordering = king_ordering(grid_12x9)
        assert sorted(ordering.perm.tolist()) == list(range(grid_12x9.n))

    def test_beats_random(self, geometric200):
        king = king_ordering(geometric200)
        rand = random_ordering(geometric200.n, rng=4)
        assert envelope_size(geometric200, king.perm) < envelope_size(geometric200, rand.perm)

    def test_front_growth_is_controlled(self):
        grid = grid2d_pattern(18, 6)
        ordering = king_ordering(grid)
        assert frontwidths(grid, ordering.perm).max() <= 4 * 6

    def test_reverse_king_is_reverse(self, grid_8x6):
        king = king_ordering(grid_8x6)
        reverse = reverse_king_ordering(grid_8x6)
        np.testing.assert_array_equal(reverse.perm, king.perm[::-1])

    def test_disconnected_handled(self, disconnected_pattern):
        ordering = king_ordering(disconnected_pattern)
        assert sorted(ordering.perm.tolist()) == list(range(17))

    def test_algorithm_names(self, path10):
        assert king_ordering(path10).algorithm == "king"
        assert reverse_king_ordering(path10).algorithm == "reverse-king"

    def test_registered(self):
        from repro.orderings.registry import ORDERING_ALGORITHMS

        assert "king" in ORDERING_ALGORITHMS
        assert "reverse-king" in ORDERING_ALGORITHMS

    @given(small_connected_patterns())
    @settings(max_examples=25, deadline=None)
    def test_always_valid_permutation(self, pattern):
        ordering = king_ordering(pattern)
        assert sorted(ordering.perm.tolist()) == list(range(pattern.n))
