"""Unit tests for the ordering-algorithm registry (repro.orderings.registry)."""

import pytest

from repro.collections.meshes import grid2d_pattern
from repro.orderings.base import Ordering
from repro.orderings.registry import (
    ORDERING_ALGORITHMS,
    PAPER_ALGORITHMS,
    get_ordering_algorithm,
)


class TestRegistry:
    def test_paper_algorithms_all_registered(self):
        assert set(PAPER_ALGORITHMS) <= set(ORDERING_ALGORITHMS)

    def test_paper_algorithm_order_matches_tables(self):
        assert PAPER_ALGORITHMS == ("spectral", "gk", "gps", "rcm")

    def test_lookup_case_insensitive(self):
        assert get_ordering_algorithm("RCM") is ORDERING_ALGORITHMS["rcm"]
        assert get_ordering_algorithm(" Spectral ") is ORDERING_ALGORITHMS["spectral"]

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="valid names"):
            get_ordering_algorithm("minimum-degree")

    @pytest.mark.parametrize("name", sorted(ORDERING_ALGORITHMS))
    def test_every_algorithm_returns_valid_ordering(self, name):
        pattern = grid2d_pattern(6, 5)
        ordering = ORDERING_ALGORITHMS[name](pattern)
        assert isinstance(ordering, Ordering)
        assert sorted(ordering.perm.tolist()) == list(range(pattern.n))

    def test_identity_entry(self):
        pattern = grid2d_pattern(4, 4)
        ordering = ORDERING_ALGORITHMS["identity"](pattern)
        assert ordering.is_identity()
