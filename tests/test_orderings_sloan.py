"""Unit tests for Sloan's ordering (repro.orderings.sloan)."""

import numpy as np
from hypothesis import given, settings

from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.envelope.metrics import envelope_size, frontwidths
from repro.orderings.base import random_ordering
from repro.orderings.sloan import sloan_ordering
from tests.conftest import small_connected_patterns


class TestSloan:
    def test_path_is_optimal(self, path10):
        ordering = sloan_ordering(path10)
        assert envelope_size(path10, ordering.perm) == 9

    def test_valid_permutation(self, grid_12x9):
        ordering = sloan_ordering(grid_12x9)
        assert sorted(ordering.perm.tolist()) == list(range(grid_12x9.n))

    def test_beats_random(self, geometric200):
        sloan = sloan_ordering(geometric200)
        rand = random_ordering(geometric200.n, rng=8)
        assert envelope_size(geometric200, sloan.perm) < envelope_size(geometric200, rand.perm)

    def test_front_stays_small_on_grid(self):
        grid = grid2d_pattern(20, 6)
        ordering = sloan_ordering(grid)
        fronts = frontwidths(grid, ordering.perm)
        assert fronts.max() <= 3 * 6  # close to the short grid dimension

    def test_weights_affect_result(self, geometric200):
        default = sloan_ordering(geometric200)
        distance_heavy = sloan_ordering(geometric200, w1=1, w2=8)
        # different weight profiles should normally give different orderings
        assert not np.array_equal(default.perm, distance_heavy.perm)

    def test_metadata_records_weights(self, path10):
        ordering = sloan_ordering(path10, w1=3, w2=2)
        assert ordering.metadata["w1"] == 3
        assert ordering.metadata["w2"] == 2

    def test_disconnected_handled(self, disconnected_pattern):
        ordering = sloan_ordering(disconnected_pattern)
        assert sorted(ordering.perm.tolist()) == list(range(17))

    def test_algorithm_name(self, path10):
        assert sloan_ordering(path10).algorithm == "sloan"

    def test_deterministic(self, geometric200):
        a = sloan_ordering(geometric200)
        b = sloan_ordering(geometric200)
        np.testing.assert_array_equal(a.perm, b.perm)

    @given(small_connected_patterns())
    @settings(max_examples=25, deadline=None)
    def test_always_valid_permutation(self, pattern):
        ordering = sloan_ordering(pattern)
        assert sorted(ordering.perm.tolist()) == list(range(pattern.n))
