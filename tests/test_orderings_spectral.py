"""Unit tests for the spectral ordering — Algorithm 1 (repro.orderings.spectral)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.collections.generators import airfoil_pattern
from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.envelope.metrics import envelope_size
from repro.orderings.base import random_ordering
from repro.orderings.spectral import (
    SpectralOrderingResult,
    ordering_from_vector,
    spectral_ordering,
)
from repro.sparse.pattern import SymmetricPattern
from tests.conftest import small_connected_patterns


class TestOrderingFromVector:
    def test_sorts_nondecreasing(self):
        vec = np.array([0.3, -1.0, 0.1, 2.0])
        perm = ordering_from_vector(vec)
        np.testing.assert_array_equal(perm, [1, 2, 0, 3])

    def test_sorts_nonincreasing(self):
        vec = np.array([0.3, -1.0, 0.1, 2.0])
        perm = ordering_from_vector(vec, direction="nonincreasing")
        np.testing.assert_array_equal(perm, [3, 0, 2, 1])

    def test_tie_break_by_degree_then_index(self):
        pattern = SymmetricPattern.from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        vec = np.zeros(4)  # all tied: degree order is 3(deg1), 1,2(deg2), 0(deg3)
        perm = ordering_from_vector(vec, pattern)
        np.testing.assert_array_equal(perm, [3, 1, 2, 0])

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            ordering_from_vector(np.ones(3), direction="sideways")


class TestSpectralOrderingAlgorithm1:
    def test_path_recovers_natural_order(self, path10):
        # The Fiedler vector of a path is monotone, so the spectral ordering
        # must recover the natural (or reversed) optimal ordering.
        ordering = spectral_ordering(path10, method="dense")
        assert envelope_size(path10, ordering.perm) == 9
        assert list(ordering.perm) in (list(range(10)), list(range(9, -1, -1)))

    def test_valid_permutation(self, grid_12x9):
        ordering = spectral_ordering(grid_12x9)
        assert sorted(ordering.perm.tolist()) == list(range(grid_12x9.n))

    def test_both_directions_evaluated(self, geometric200):
        result = spectral_ordering(geometric200, method="lanczos", return_details=True)
        assert isinstance(result, SpectralOrderingResult)
        assert result.direction in ("nondecreasing", "nonincreasing")
        chosen = min(result.envelope_nondecreasing, result.envelope_nonincreasing)
        assert envelope_size(geometric200, result.ordering.perm) == chosen

    def test_beats_random_ordering(self, geometric200):
        spec = spectral_ordering(geometric200, method="lanczos")
        rand = random_ordering(geometric200.n, rng=3)
        assert envelope_size(geometric200, spec.perm) < envelope_size(geometric200, rand.perm)

    def test_airfoil_beats_rcm(self):
        """The paper's headline: spectral beats RCM on unstructured meshes (BARTH4)."""
        from repro.orderings.cuthill_mckee import rcm_ordering

        pattern = airfoil_pattern(500, seed=4)
        spec = envelope_size(pattern, spectral_ordering(pattern, method="lanczos").perm)
        rcm = envelope_size(pattern, rcm_ordering(pattern).perm)
        assert spec < rcm

    def test_metadata_summary(self, grid_8x6):
        ordering = spectral_ordering(grid_8x6, method="dense")
        assert ordering.algorithm == "spectral"
        assert "fiedler_value" in ordering.metadata
        assert ordering.metadata["fiedler_value"] > 0
        assert ordering.metadata["solver"] == "dense"

    def test_return_details_fields(self, grid_8x6):
        result = spectral_ordering(grid_8x6, method="dense", return_details=True)
        assert result.fiedler_value > 0
        assert result.fiedler_vector.shape == (grid_8x6.n,)
        assert result.solver == "dense"
        assert result.envelope_nondecreasing > 0
        assert result.envelope_nonincreasing > 0

    def test_solver_method_forwarded(self, grid_8x6):
        ordering = spectral_ordering(grid_8x6, method="lanczos")
        assert ordering.metadata["solver"] == "lanczos"

    def test_disconnected_ordered_per_component(self, disconnected_pattern):
        ordering = spectral_ordering(disconnected_pattern, method="dense")
        assert sorted(ordering.perm.tolist()) == list(range(17))
        assert ordering.metadata["num_components"] == 3
        # components must occupy contiguous position blocks
        positions = ordering.positions
        first_block = sorted(positions[:8].tolist())
        assert first_block == list(range(min(first_block), min(first_block) + 8))

    def test_deterministic_given_seed(self, geometric200):
        a = spectral_ordering(geometric200, method="lanczos", rng=11)
        b = spectral_ordering(geometric200, method="lanczos", rng=11)
        np.testing.assert_array_equal(a.perm, b.perm)

    def test_accepts_scipy_input(self, grid_8x6):
        ordering = spectral_ordering(grid_8x6.to_scipy("spd"), method="dense")
        assert sorted(ordering.perm.tolist()) == list(range(grid_8x6.n))

    def test_single_vertex(self):
        ordering = spectral_ordering(SymmetricPattern.empty(1))
        np.testing.assert_array_equal(ordering.perm, [0])

    def test_return_details_requires_nontrivial_component(self):
        with pytest.raises(ValueError):
            spectral_ordering(SymmetricPattern.empty(1), return_details=True)

    def test_grid_envelope_close_to_known_orderings(self):
        # On a long thin grid the spectral ordering should be within a factor
        # of ~2 of the natural ordering's envelope (which is near-optimal).
        grid = grid2d_pattern(30, 5)
        natural_envelope = envelope_size(grid)
        spec = spectral_ordering(grid, method="lanczos")
        assert envelope_size(grid, spec.perm) <= 2 * natural_envelope

    @given(small_connected_patterns())
    @settings(max_examples=20, deadline=None)
    def test_always_valid_permutation(self, pattern):
        ordering = spectral_ordering(pattern, method="dense")
        assert sorted(ordering.perm.tolist()) == list(range(pattern.n))
