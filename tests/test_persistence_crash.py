"""Crash injection across every persistence path a later run reads.

A run killed mid-write must leave behind either a complete old file (atomic
replace) or damage the readers report cleanly: truncated cost models,
results artifacts and bench baselines exit 2 with a message — never a
``json.decoder.JSONDecodeError`` traceback — and a stream killed during its
very first (header) write resumes as an empty stream, not "corrupt".
"""

from __future__ import annotations

import json

import pytest

from repro.batch import CostModel, TruncatedStreamError, read_stream, run_suite
from repro.cli import main
from repro.store import reset_default_store


@pytest.fixture(autouse=True)
def _no_ambient_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    reset_default_store()
    yield
    reset_default_store()


def _truncated_copy(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text[: len(text) // 2])
    return path


SUITE_ARGS = ["suite", "POW9", "--algorithms", "rcm", "--scale", "0.05",
              "--jobs", "1", "--no-progress"]


class TestTruncatedJSONInputs:
    def test_truncated_cost_model_exits_2(self, tmp_path, capsys):
        model = CostModel()
        model.observe("POW9", "rcm", 0.05, 0.5)
        whole = tmp_path / "costs.json"
        model.save(whole)
        damaged = _truncated_copy(tmp_path, "costs-cut.json", whole.read_text())
        code = main(SUITE_ARGS + ["--cost-model", str(damaged)])
        assert code == 2
        err = capsys.readouterr().err
        assert "costs-cut.json" in err
        assert "Traceback" not in err

    def test_truncated_baseline_artifact_exits_2(self, tmp_path, capsys):
        suite = run_suite(["POW9"], algorithms=["rcm"], scale=0.05)
        whole = tmp_path / "base.json"
        suite.save(whole)
        damaged = _truncated_copy(tmp_path, "base-cut.json", whole.read_text())
        code = main(SUITE_ARGS + ["--baseline", str(damaged)])
        assert code == 2
        err = capsys.readouterr().err
        assert "base-cut.json" in err
        assert "Traceback" not in err

    def test_truncated_bench_baseline_exits_2(self, tmp_path, capsys):
        damaged = _truncated_copy(
            tmp_path, "bench-cut.json",
            json.dumps({"schema": "bench/1", "results": [{"name": "k"}]}, indent=2),
        )
        code = main(["bench", "--quick", "--against", str(damaged),
                     "--output", str(tmp_path / "out.json")])
        assert code == 2
        assert "Traceback" not in capsys.readouterr().err

    def test_truncated_merge_input_exits_2(self, tmp_path, capsys):
        suite = run_suite(["POW9"], algorithms=["rcm"], scale=0.05)
        whole = tmp_path / "shard.json"
        suite.save(whole)
        damaged = _truncated_copy(tmp_path, "shard-cut.json", whole.read_text())
        code = main(["merge", str(damaged), "--output", str(tmp_path / "m.json")])
        assert code == 2
        assert "Traceback" not in capsys.readouterr().err


class TestKilledDuringHeaderWrite:
    """The stream file a run killed during its first write leaves behind."""

    def test_empty_stream_reports_resumable(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("")
        with pytest.raises(TruncatedStreamError, match="killed before"):
            read_stream(path)

    def test_partial_header_line_reports_resumable(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "header", "schema_ver')  # no newline, cut mid-key
        with pytest.raises(TruncatedStreamError, match="no complete line"):
            read_stream(path)

    def test_wrong_first_line_is_still_corruption(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "record"}\n')
        with pytest.raises(ValueError, match="does not start with a header"):
            read_stream(path)
        with pytest.raises(TruncatedStreamError):
            # but only the resumable flavour is the new subclass
            raise TruncatedStreamError("x")

    @pytest.mark.parametrize("content", ["", '{"kind": "hea'])
    def test_cli_resume_starts_fresh(self, tmp_path, content, capsys):
        stream = tmp_path / "run.jsonl"
        stream.write_text(content)
        code = main(SUITE_ARGS + ["--resume", str(stream),
                                  "--stream-output", str(stream),
                                  "--output", str(tmp_path / "out.json")])
        captured = capsys.readouterr()
        assert code == 0
        # the condition was reported, the run proceeded, the sink is whole
        assert "run.jsonl" in captured.err
        header, records = read_stream(stream)
        assert header["kind"] == "header"
        assert len(records) == 1
        assert (tmp_path / "out.json").exists()

    def test_cli_resume_still_rejects_real_corruption(self, tmp_path, capsys):
        stream = tmp_path / "run.jsonl"
        stream.write_text('{"kind": "record", "bogus": 1}\n{"kind": "record"}\n')
        code = main(SUITE_ARGS + ["--resume", str(stream)])
        assert code == 2
        assert "does not start with a header" in capsys.readouterr().err


class TestAtomicPersistenceWriters:
    """The migrated writers leave no partial file behind, ever."""

    def test_cost_model_save_replaces_atomically(self, tmp_path, monkeypatch):
        import os as _os

        path = tmp_path / "costs.json"
        model = CostModel()
        model.observe("POW9", "rcm", 0.05, 0.5)
        model.save(path)
        before = path.read_text()

        def killed(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(_os, "replace", killed)
        model.observe("POW9", "rcm", 0.05, 0.9)
        with pytest.raises(KeyboardInterrupt):
            model.save(path)
        monkeypatch.undo()
        assert path.read_text() == before  # old model intact, no half-file
        assert [p.name for p in tmp_path.iterdir()] == ["costs.json"]
        assert len(CostModel.from_file(path)) == 1

    def test_suite_and_bench_writers_leave_no_temp_droppings(self, tmp_path):
        from repro.bench.harness import save_bench

        suite = run_suite(["POW9"], algorithms=["rcm"], scale=0.05)
        suite.save(tmp_path / "results.json")
        save_bench({"schema": "bench/1", "results": []}, tmp_path / "bench.json")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["bench.json", "results.json"]
        json.loads((tmp_path / "results.json").read_text())
        json.loads((tmp_path / "bench.json").read_text())
