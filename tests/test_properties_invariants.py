"""Cross-cutting property-based tests on the library's core invariants.

These hypothesis tests tie several subsystems together: every ordering
algorithm must produce valid permutations whose envelope parameters obey the
Section 2 relations, the Fiedler machinery must respect the Laplacian
identities, and the envelope factorization must agree with dense linear
algebra on arbitrary connected structures.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.envelope.bounds import theorem_2_1_relations, two_sum_lower_bound
from repro.envelope.metrics import bandwidth, envelope_size, envelope_work, frontwidths
from repro.envelope.sums import two_sum
from repro.envelope.theory import closest_permutation_vector
from repro.factor.cholesky import envelope_cholesky
from repro.graph.laplacian import laplacian_matrix
from repro.orderings.cuthill_mckee import rcm_ordering
from repro.orderings.gibbs_king import gibbs_king_ordering
from repro.orderings.gps import gps_ordering
from repro.orderings.sloan import sloan_ordering
from repro.orderings.spectral import spectral_ordering
from tests.conftest import small_connected_patterns, small_patterns

_ALGORITHMS = {
    "spectral": lambda p: spectral_ordering(p, method="dense"),
    "rcm": rcm_ordering,
    "gps": gps_ordering,
    "gk": gibbs_king_ordering,
    "sloan": sloan_ordering,
}

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestOrderingInvariants:
    @pytest.mark.parametrize("name", sorted(_ALGORITHMS))
    @given(pattern=small_patterns())
    @settings(**_SETTINGS)
    def test_orderings_are_permutations(self, name, pattern):
        ordering = _ALGORITHMS[name](pattern)
        assert sorted(ordering.perm.tolist()) == list(range(pattern.n))

    @pytest.mark.parametrize("name", sorted(_ALGORITHMS))
    @given(pattern=small_connected_patterns())
    @settings(**_SETTINGS)
    def test_envelope_relations_hold_for_computed_orderings(self, name, pattern):
        ordering = _ALGORITHMS[name](pattern)
        assert theorem_2_1_relations(pattern, ordering.perm).all_hold

    @given(pattern=small_connected_patterns())
    @settings(**_SETTINGS)
    def test_bandwidth_bounded_by_envelope(self, pattern):
        ordering = rcm_ordering(pattern)
        assert bandwidth(pattern, ordering.perm) <= max(1, envelope_size(pattern, ordering.perm))

    @given(pattern=small_connected_patterns())
    @settings(**_SETTINGS)
    def test_frontwidth_identity_for_spectral(self, pattern):
        ordering = spectral_ordering(pattern, method="dense")
        assert frontwidths(pattern, ordering.perm).sum() == envelope_size(pattern, ordering.perm)


class TestSpectralInvariants:
    @given(pattern=small_connected_patterns(min_n=3))
    @settings(**_SETTINGS)
    def test_two_sum_lower_bound_respected_by_spectral(self, pattern):
        lap = laplacian_matrix(pattern).toarray()
        lambda2 = float(np.linalg.eigvalsh(lap)[1])
        bound = two_sum_lower_bound(pattern, lambda2=lambda2)
        ordering = spectral_ordering(pattern, method="dense")
        assert two_sum(pattern, ordering.perm) >= bound - 1e-6

    @given(pattern=small_connected_patterns(min_n=3))
    @settings(**_SETTINGS)
    def test_closest_permutation_vector_is_sorted_like_input(self, pattern):
        lap = laplacian_matrix(pattern).toarray()
        vec = np.linalg.eigh(lap)[1][:, 1]
        closest = closest_permutation_vector(vec)
        # the ranking induced by the closest vector must follow the input ranking
        assert np.array_equal(np.argsort(closest, kind="stable"), np.argsort(vec, kind="stable"))


class TestFactorizationInvariants:
    @given(pattern=small_connected_patterns(min_n=2))
    @settings(**_SETTINGS)
    def test_envelope_cholesky_matches_dense(self, pattern):
        matrix = pattern.to_scipy("spd")
        chol = envelope_cholesky(matrix)
        reconstructed = np.tril(chol.factor.to_dense(symmetric=False))
        np.testing.assert_allclose(
            reconstructed @ reconstructed.T, matrix.toarray(), atol=1e-8
        )

    @given(pattern=small_connected_patterns(min_n=2))
    @settings(**_SETTINGS)
    def test_solve_accuracy_under_reordering(self, pattern):
        matrix = pattern.to_scipy("spd")
        ordering = rcm_ordering(pattern)
        chol = envelope_cholesky(matrix, perm=ordering.perm)
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(pattern.n)
        permuted = matrix[ordering.perm][:, ordering.perm]
        b = permuted @ x_true
        np.testing.assert_allclose(chol.solve(b), x_true, atol=1e-6)

    @given(pattern=small_connected_patterns(min_n=2))
    @settings(**_SETTINGS)
    def test_work_estimate_dominates_envelope_work(self, pattern):
        from repro.factor.cholesky import estimate_factor_work

        assert estimate_factor_work(pattern) >= 0.5 * envelope_work(pattern)
