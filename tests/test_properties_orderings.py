"""Property-based invariants of *every* registered ordering algorithm.

Three families of properties over hypothesis-generated problems:

* every algorithm returns a valid permutation, on connected and on
  disconnected (even edgeless) structures;
* the envelope parameters are invariant under vertex relabeling — computing
  an ordering, then relabeling the graph and transporting the permutation
  through the relabeling, leaves envelope size / bandwidth / envelope work
  unchanged (the metrics depend only on assigned positions, never on labels);
* RCM is exactly reversed Cuthill-McKee (the SPARSPAK convention).

Algorithms that take an ``rng`` (``spectral``, ``hybrid``, ``random``) get a
fixed-seed generator so every example is reproducible, mirroring the batch
engine's deterministic per-task seeding.
"""

from __future__ import annotations

import inspect

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.envelope.metrics import bandwidth, envelope_size, envelope_work
from repro.orderings.cuthill_mckee import cuthill_mckee_ordering, rcm_ordering
from repro.orderings.registry import ORDERING_ALGORITHMS
from tests.conftest import small_connected_patterns, small_patterns

ALL_ALGORITHMS = sorted(ORDERING_ALGORITHMS)

_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run_algorithm(name, pattern):
    """Run a registered algorithm deterministically (dense eigensolver,
    fixed-seed rng) so hypothesis examples are reproducible."""
    func = ORDERING_ALGORITHMS[name]
    options = {}
    parameters = inspect.signature(func).parameters
    if "method" in parameters:
        options["method"] = "dense"
    if "rng" in parameters:
        options["rng"] = np.random.default_rng(0)
    return func(pattern, **options)


class TestEveryAlgorithmIsAPermutation:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    @given(pattern=small_patterns())
    @settings(**_SETTINGS)
    def test_permutation_on_arbitrary_patterns(self, name, pattern):
        ordering = _run_algorithm(name, pattern)
        assert sorted(ordering.perm.tolist()) == list(range(pattern.n))

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    @given(pattern=small_connected_patterns())
    @settings(**_SETTINGS)
    def test_permutation_on_connected_patterns(self, name, pattern):
        ordering = _run_algorithm(name, pattern)
        assert sorted(ordering.perm.tolist()) == list(range(pattern.n))


class TestRelabelingInvariance:
    """Relabel vertices by a random bijection sigma, transport the computed
    permutation through sigma, and check every envelope metric is unchanged."""

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    @given(
        pattern=small_connected_patterns(),
        relabel_seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**_SETTINGS)
    def test_envelope_metrics_invariant(self, name, pattern, relabel_seed):
        ordering = _run_algorithm(name, pattern)
        sigma = np.random.default_rng(relabel_seed).permutation(pattern.n)
        # Relabeled pattern B with B[sigma[i], sigma[j]] = A[i, j]:
        # row k of B is row argsort(sigma)[k] of A.
        relabeled = pattern.permute(np.argsort(sigma))
        transported = sigma[ordering.perm]
        assert envelope_size(relabeled, transported) == envelope_size(pattern, ordering.perm)
        assert bandwidth(relabeled, transported) == bandwidth(pattern, ordering.perm)
        assert envelope_work(relabeled, transported) == envelope_work(pattern, ordering.perm)


class TestRcmIsReversedCm:
    @given(pattern=small_patterns())
    @settings(**_SETTINGS)
    def test_rcm_equals_reversed_cm(self, pattern):
        rcm = rcm_ordering(pattern)
        cm = cuthill_mckee_ordering(pattern)
        assert np.array_equal(rcm.perm, cm.perm[::-1])

    @given(pattern=small_connected_patterns())
    @settings(**_SETTINGS)
    def test_rcm_equals_reversed_cm_with_explicit_start(self, pattern):
        rcm = rcm_ordering(pattern, start=0)
        cm = cuthill_mckee_ordering(pattern, start=0)
        assert np.array_equal(rcm.perm, cm.perm[::-1])
