"""Differential sweep: every registered ordering on 25 random small patterns.

Two independent oracles are checked on every ``(pattern, algorithm)`` pair:

1. **Kernel equivalence** — the ordering computed on the vectorized
   production kernels must equal, permutation entry for permutation entry,
   the ordering computed with the naive vertex-at-a-time implementations of
   :mod:`repro.reference` monkeypatched in (the same patching used by
   ``tests/test_kernels_reference.py``, here driven across a larger and
   nastier corpus).
2. **Metric recomputation** — the envelope statistics the batch engine
   would record for that ordering (bandwidth, envelope size/work, 1-sum,
   2-sum, frontwidths) must match a brute-force recomputation from the
   permuted *dense* pattern, an implementation that shares no code with
   :mod:`repro.envelope.metrics`.

The corpus mixes the shapes that break frontier/slab code: connected
graphs, multi-component graphs, pendant (degree-1) chains and isolated
vertices — 25 patterns, deterministically generated from
:func:`repro.utils.rng.default_rng` seeds — plus small instances of the
random-graph families (Barabási–Albert, Watts–Strogatz, R-MAT), whose
power-law degree tails and hub-dominated frontiers are exactly where slab
kernels can diverge from the naive loops.
"""

from __future__ import annotations

import inspect

import numpy as np
import pytest

from repro import backends
from repro.envelope.metrics import envelope_statistics
from repro.graph.components import connected_components
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.sparse.pattern import SymmetricPattern
from repro.utils.rng import default_rng
from tests.test_kernels_reference import _patch_reference_kernels

N_PATTERNS = 25


def _random_pattern(seed: int) -> SymmetricPattern:
    """One deterministic pattern; the kind cycles through five shapes."""
    rng = default_rng(550_000 + seed)
    kind = seed % 5
    n = int(rng.integers(4, 33))
    if kind == 0:
        # connected: random spanning tree plus a few chords
        edges = [(int(rng.integers(0, v)), v) for v in range(1, n)]
        extra = rng.integers(0, n, size=(n // 2, 2))
        edges += [(int(a), int(b)) for a, b in extra if a != b]
    elif kind == 1:
        # sparse random graph — almost surely disconnected
        pairs = rng.integers(0, n, size=(max(1, n // 3), 2))
        edges = [(int(a), int(b)) for a, b in pairs if a != b]
    elif kind == 2:
        # pendant-heavy: a short path core with degree-1 leaves hanging off
        core = max(2, n // 3)
        edges = [(i, i + 1) for i in range(core - 1)]
        edges += [(int(rng.integers(0, core)), v) for v in range(core, n)]
    elif kind == 3:
        # isolated vertices: edges confined to the first half
        half = max(2, n // 2)
        pairs = rng.integers(0, half, size=(half, 2))
        edges = [(int(a), int(b)) for a, b in pairs if a != b]
    else:
        # denser random graph (ties and cliques stress tie-breaking)
        pairs = rng.integers(0, n, size=(2 * n, 2))
        edges = [(int(a), int(b)) for a, b in pairs if a != b]
    return SymmetricPattern.from_edges(n, edges)


def _family_patterns() -> list[SymmetricPattern]:
    """Small instances of the power-law / small-world generator families."""
    from repro.collections.random_graphs import (
        barabasi_albert_pattern,
        rmat_pattern,
        watts_strogatz_pattern,
    )

    return [
        barabasi_albert_pattern(24, m=2, seed=210),
        barabasi_albert_pattern(36, m=3, seed=211),
        watts_strogatz_pattern(30, k=4, beta=0.2, seed=212),
        watts_strogatz_pattern(24, k=6, beta=0.3, seed=213),
        rmat_pattern(5, edge_factor=3, seed=214),
        rmat_pattern(5, edge_factor=2, seed=215),
    ]


FAMILY_PATTERNS = _family_patterns()
N_FAMILY_PATTERNS = 6

PATTERNS = [_random_pattern(seed) for seed in range(N_PATTERNS)] + FAMILY_PATTERNS


def test_corpus_covers_the_advertised_shapes():
    """The corpus really contains connected graphs, disconnected graphs,
    pendant vertices, isolated vertices and the generator families
    (otherwise the sweep would silently stop exercising those paths)."""
    assert len(FAMILY_PATTERNS) == N_FAMILY_PATTERNS
    assert len(PATTERNS) == N_PATTERNS + N_FAMILY_PATTERNS
    # the family patterns bring hub-dominated degree distributions
    assert any(p.degree().max() >= 3 * p.degree().mean() for p in FAMILY_PATTERNS)
    component_counts = [connected_components(p)[0] for p in PATTERNS]
    assert any(count == 1 for count in component_counts)
    assert any(count > 1 for count in component_counts)
    degrees = [np.asarray(p.degree()) for p in PATTERNS]
    assert any((d == 1).any() for d in degrees)
    assert any((d == 0).any() for d in degrees)


def brute_force_metrics(pattern: SymmetricPattern, perm: np.ndarray) -> dict:
    """Envelope statistics recomputed from the permuted dense pattern.

    Definitions straight from the paper (Sections 2.1, 2.3, 2.4), applied
    to the explicitly permuted boolean matrix — quadratic and slow, but
    independent of every production code path.
    """
    n = pattern.n
    dense = pattern.to_dense_pattern()[np.ix_(perm, perm)]
    np.fill_diagonal(dense, True)

    firsts = np.array([np.flatnonzero(dense[i])[0] for i in range(n)], dtype=int)
    widths = np.arange(n) - firsts
    one_sum = sum(int(i - j) for i in range(n) for j in range(i)
                  if dense[i, j])
    two_sum = sum(int(i - j) ** 2 for i in range(n) for j in range(i)
                  if dense[i, j])
    fronts = np.array([
        sum(1 for v in range(j, n) if dense[v, :j].any())
        for j in range(1, n + 1)
    ], dtype=float)
    return {
        "n": n,
        "nnz": int(dense.sum()),
        "bandwidth": int(widths.max(initial=0)),
        "envelope_size": int(widths.sum()),
        "envelope_work": int(np.dot(widths, widths)),
        "one_sum": one_sum,
        "two_sum": two_sum,
        "max_frontwidth": int(fronts.max(initial=0)),
        "mean_frontwidth": float(fronts.mean()) if n else 0.0,
        "rms_frontwidth": float(np.sqrt(np.mean(fronts**2))) if n else 0.0,
    }


def _call_with_seed(func, pattern, seed: int):
    """Run an ordering with a deterministic rng when the algorithm takes one."""
    kwargs = {}
    if "rng" in inspect.signature(func).parameters:
        kwargs["rng"] = np.random.default_rng(seed)
    return func(pattern, **kwargs)


@pytest.mark.parametrize("algorithm", sorted(ORDERING_ALGORITHMS))
def test_ordering_differential_sweep(algorithm):
    """Vectorized == reference kernels AND metrics == brute force, for one
    registered algorithm across the whole corpus (25 random shapes plus the
    generator-family patterns)."""
    func = ORDERING_ALGORITHMS[algorithm]
    for seed, pattern in enumerate(PATTERNS):
        fast = _call_with_seed(func, pattern, seed)
        with pytest.MonkeyPatch.context() as context:
            _patch_reference_kernels(context)
            naive = _call_with_seed(func, pattern, seed)
        assert np.array_equal(fast.perm, naive.perm), (
            f"{algorithm} diverged from the reference kernels on "
            f"pattern #{seed} (n={pattern.n})"
        )

        stats = envelope_statistics(pattern, fast.perm).as_dict()
        expected = brute_force_metrics(pattern, np.asarray(fast.perm))
        for name, value in expected.items():
            assert stats[name] == pytest.approx(value), (
                f"{algorithm} pattern #{seed}: metric {name} is "
                f"{stats[name]!r}, brute force says {value!r}"
            )


@pytest.mark.parametrize(
    "backend", [b for b in backends.available_backends() if b != "numpy"]
)
@pytest.mark.parametrize("algorithm", sorted(ORDERING_ALGORITHMS))
def test_backend_tiers_match_numpy_across_sweep(algorithm, backend):
    """Every non-default backend tier (loop ``python``, compiled ``numba``
    when installed) produces the numpy tier's ordering bit for bit over the
    same corpus the reference sweep uses.  An explicit tier request bypasses
    the auto size threshold, so the dispatched kernels really run even on
    these tiny patterns."""
    func = ORDERING_ALGORITHMS[algorithm]
    for seed, pattern in enumerate(PATTERNS):
        base = _call_with_seed(func, pattern, seed)
        backends.set_backend(backend)
        try:
            tiered = _call_with_seed(func, pattern, seed)
        finally:
            backends.set_backend(None)
        assert np.array_equal(base.perm, tiered.perm), (
            f"{algorithm} under backend {backend!r} diverged from the numpy "
            f"tier on pattern #{seed} (n={pattern.n})"
        )
