"""Scale-stress tier: the random-graph families at paper-exceeding sizes.

The paper's largest matrix (BARTH5) has n = 15,606; ROADMAP item 4 asks what
happens at n ~ 10^5-10^6, where the spectral pipeline's cost profile changes
qualitatively.  This tier drives the batch engine there through the
``RANDOM/*`` families, whose analytic ``expected_nnz`` makes ``--timeout
auto`` meaningful even for never-before-seen cells.

Two layers:

* **Smoke tier** (always on; the CI ``scale`` job runs exactly this file
  with ``-m "not slow"``): reduced-n suites under the auto-timeout policy,
  checking the *contract* — every ``RANDOM/*`` cell gets a finite limit,
  every record ends ``ok`` or a structured ``timeout``, never anything else.
* **Slow tier** (``@pytest.mark.slow``): one cell per family at
  n >= 10^5 (scale 0.125 of BASE_N = 2^20), plus the acceptance-criterion
  cell — Barabási-Albert at scale 1.0, n = 2^20 ~ 10^6.  Every limit is
  additionally hard-capped, so even a pathological regression turns into a
  timeout record within minutes, never a hung test run.

Timeouts here are enforced by per-task worker processes that the engine
terminates at the deadline (see ``repro.batch.engine._iter_with_timeout``),
so "never a hang" holds even if an ordering kernel livelocks.
"""

import pytest

from repro.batch import CostModel, auto_timeout, run_suite
from repro.batch.tasks import build_tasks
from repro.collections.registry import available_problems

RANDOM_FAMILIES = tuple(available_problems("random", paper_order=True))

#: Scale 0.125 of BASE_N = 2^20 -> n = 131,072 per family (>= the 10^5 floor
#: the stress tier promises).  The acceptance cell runs BA at scale 1.0.
STRESS_SCALE = 0.125
FULL_SCALE = 1.0

#: Hard wall-clock ceilings layered over the auto policy.  The analytic
#: estimate normally completes these cells far sooner; the cap only matters
#: when a perf regression would otherwise stall the whole test session.
STRESS_CAP_S = 120.0
FULL_CAP_S = 180.0


def _calibrated_model(scale: float = 0.002) -> CostModel:
    """Cost model fitted from one cheap reduced-n run over the families."""
    calibration = run_suite(RANDOM_FAMILIES, ("rcm",), scale=scale,
                            base_seed=0, keep_orderings=False)
    assert all(record.status == "ok" for record in calibration.records)
    model = CostModel()
    model.observe_suite(calibration)
    return model


def _capped(policy, cap: float):
    """The auto policy with a hard ceiling — bounded even if estimates blow up."""

    def timeout_for(task):
        limit = policy(task)
        return cap if limit is None else min(limit, cap)

    return timeout_for


def _assert_structured(record):
    """Every stress record is ``ok`` or a structured timeout — nothing else."""
    assert record.status in ("ok", "timeout"), (
        f"{record.problem}/{record.algorithm}: unexpected status "
        f"{record.status!r} ({record.error})"
    )
    if record.status == "timeout":
        assert record.error["type"] == "TaskTimeout"
        assert "timeout" in record.error["message"]
        assert record.time_s > 0


class TestAutoTimeoutContract:
    """The policy piece the stress tier stands on, checked at toy sizes."""

    def test_every_random_cell_gets_a_finite_limit(self):
        # Even a *blank* cost model must bound RANDOM/* cells: their specs
        # carry analytic sizes, so there is never an excuse for no limit.
        policy = auto_timeout(CostModel())
        tasks = build_tasks(RANDOM_FAMILIES, ("rcm", "gk"), scale=STRESS_SCALE)
        for task in tasks:
            limit = policy(task)
            assert limit is not None and 0 < limit < float("inf"), (
                f"{task.problem}/{task.algorithm} got limit {limit!r}"
            )

    def test_calibration_tightens_the_limits(self):
        model = _calibrated_model()
        blank, fitted = auto_timeout(CostModel()), auto_timeout(model)
        tasks = build_tasks(RANDOM_FAMILIES, ("rcm",), scale=STRESS_SCALE)
        # A fitted rate replaces the default rate; limits stay finite and
        # positive either way (magnitudes shift with the measured machine).
        for task in tasks:
            assert 0 < fitted(task) < float("inf")
            assert 0 < blank(task) < float("inf")

    def test_timeout_records_are_structured_not_hangs(self):
        # Force a timeout deliberately: a sub-millisecond cap on a real cell.
        suite = run_suite(("RANDOM/BA",), ("rcm",), scale=0.01,
                          timeout=lambda task: 0.001, base_seed=0)
        (record,) = suite.records
        assert record.status == "timeout"
        _assert_structured(record)
        assert suite.timeouts == [record]


class TestSmokeScaleTier:
    """Reduced-n end-to-end pass — the CI ``scale`` job's workhorse."""

    SMOKE_SCALE = 0.01  # n = 10,486 per family: quick, but past toy sizes

    def test_families_complete_under_auto_timeout(self):
        policy = auto_timeout(_calibrated_model())
        suite = run_suite(RANDOM_FAMILIES, ("rcm", "gk"), scale=self.SMOKE_SCALE,
                          timeout=_capped(policy, STRESS_CAP_S),
                          base_seed=0, keep_orderings=False)
        assert len(suite.records) == 2 * len(RANDOM_FAMILIES)
        for record in suite.records:
            _assert_structured(record)
        # at this size every cell should actually finish, not merely time out
        assert all(record.status == "ok" for record in suite.records)


@pytest.mark.slow
class TestStressScaleTier:
    """The real thing: n >= 10^5 per family, BA at n = 2^20 ~ 10^6."""

    def test_each_family_at_1e5_completes_or_times_out(self):
        policy = auto_timeout(_calibrated_model())
        suite = run_suite(RANDOM_FAMILIES, ("rcm",), scale=STRESS_SCALE,
                          timeout=_capped(policy, STRESS_CAP_S),
                          n_jobs=2, base_seed=0, keep_orderings=False)
        assert len(suite.records) == len(RANDOM_FAMILIES)
        for record in suite.records:
            _assert_structured(record)
        # the suite's structured failure channels stay clean either way
        assert suite.failures == []

    def test_ba_at_1e6_acceptance_cell(self):
        """ISSUE acceptance criterion: the BA cell at n = 10^6 completes
        under the auto policy or yields a structured timeout record —
        never a hang (the hard cap bounds even a livelocked kernel)."""
        policy = auto_timeout(_calibrated_model())
        suite = run_suite(("RANDOM/BA",), ("rcm",), scale=FULL_SCALE,
                          timeout=_capped(policy, FULL_CAP_S),
                          base_seed=0, keep_orderings=False)
        (record,) = suite.records
        _assert_structured(record)
        if record.status == "ok":
            assert record.n >= 1_000_000
            assert record.time_s < FULL_CAP_S
