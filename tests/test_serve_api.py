"""End-to-end integration tests for the ``repro serve`` HTTP API.

Boots the real server (``python -m repro serve --port 0`` in a subprocess,
via :mod:`tests.serve_harness`) and drives it with the stdlib client.
Pins the tentpole acceptance criteria: registry / inline / upload
submissions across three algorithms, job polling, the 4xx validation
surface, and byte-identity of server records (canonical, timing-free form)
with what ``repro suite`` computes for the same cells.
"""

from __future__ import annotations

import io
import json

import pytest

from tests.serve_harness import ServerProcess

PROBLEM = "POW9"
SCALE = 0.02
ALGORITHMS = ("rcm", "gps", "gk")


@pytest.fixture(scope="module")
def server():
    with ServerProcess("--workers", "2") as process:
        yield process


@pytest.fixture(scope="module")
def small_pattern():
    from repro.collections.registry import load_problem

    pattern, _spec = load_problem(PROBLEM, scale=SCALE)
    return pattern


def order(server, payload, **extra):
    return server.client.order({**payload, **extra})


def canonical_record(record_dict: dict) -> dict:
    trimmed = dict(record_dict)
    trimmed.pop("time_s", None)
    return trimmed


class TestEndpoints:
    def test_health(self, server):
        assert server.client.health() == {"status": "ok"}

    def test_algorithms_lists_registry(self, server):
        body = server.client.algorithms()
        assert set(ALGORITHMS) <= set(body["algorithms"])
        assert body["paper_algorithms"] == ["spectral", "gk", "gps", "rcm"]

    def test_statsz_shape(self, server):
        stats = server.client.stats()
        assert stats["engine"] == "repro.serve"
        assert {"requests", "coalescing", "pool", "jobs"} <= set(stats)
        assert stats["pool"]["max_queue"] == 8

    def test_unknown_route_404(self, server):
        status, _headers, body = server.client.request("GET", "/v1/nothing")
        assert status == 404
        assert body["error"]["type"] == "NotFound"

    def test_method_not_allowed_405(self, server):
        status, headers, body = server.client.request("GET", "/v1/order")
        assert status == 405
        assert body["error"]["type"] == "MethodNotAllowed"
        assert headers.get("Allow") == "POST"


class TestRegistrySubmissions:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_ordering_ok(self, server, algorithm):
        body = order(server, {"problem": PROBLEM, "scale": SCALE,
                              "algorithm": algorithm})
        record = body["record"]
        assert record["status"] == "ok"
        assert record["problem"] == PROBLEM
        assert record["algorithm"] == algorithm
        assert record["metrics"]["envelope_size"] > 0
        assert body["coalesced"] is False or body["coalesced"] is True

    def test_permutation_on_request(self, server):
        body = order(server, {"problem": PROBLEM, "scale": SCALE,
                              "algorithm": "rcm", "include_permutation": True})
        permutation = body["permutation"]
        assert sorted(permutation) == list(range(body["record"]["n"]))

    def test_no_permutation_by_default(self, server):
        body = order(server, {"problem": PROBLEM, "scale": SCALE,
                              "algorithm": "rcm"})
        assert "permutation" not in body


class TestInlineSubmissions:
    def test_csr_and_coo_agree(self, server, small_pattern):
        csr_body = order(server, {
            "algorithm": "rcm",
            "csr": {"n": int(small_pattern.n),
                    "indptr": [int(i) for i in small_pattern.indptr],
                    "indices": [int(i) for i in small_pattern.indices]},
        })
        rows, cols = zip(*((int(i), int(j)) for i, j in small_pattern.edges()))
        coo_body = order(server, {
            "algorithm": "rcm",
            "coo": {"n": int(small_pattern.n), "rows": list(rows),
                    "cols": list(cols)},
        })
        # Same structure -> same digest -> same inline label and seed ->
        # identical canonical record.
        assert canonical_record(csr_body["record"]) == \
            canonical_record(coo_body["record"])
        assert csr_body["record"]["problem"].startswith("inline:")

    def test_matrix_market_upload(self, server, small_pattern):
        from repro.sparse.io_mm import write_matrix_market

        text = io.StringIO()
        write_matrix_market(text, small_pattern.to_scipy())
        mm_body = order(server, {"algorithm": "gps",
                                 "matrix_market": text.getvalue()})
        csr_body = order(server, {
            "algorithm": "gps",
            "csr": {"n": int(small_pattern.n),
                    "indptr": [int(i) for i in small_pattern.indptr],
                    "indices": [int(i) for i in small_pattern.indices]},
        })
        assert canonical_record(mm_body["record"]) == \
            canonical_record(csr_body["record"])


class TestJobPolling:
    def test_async_job_lifecycle(self, server):
        status, _headers, body = server.client.request(
            "POST", "/v1/order",
            {"problem": PROBLEM, "scale": SCALE, "algorithm": "rcm",
             "mode": "async"})
        assert status == 202
        job = body["job"]
        assert job["state"] in ("queued", "done")
        assert "record" not in job
        final = server.client.poll_job(job["id"])
        assert final["state"] == "done"
        assert final["http_status"] == 200
        assert final["record"]["status"] == "ok"

    def test_sync_requests_get_jobs_too(self, server):
        body = order(server, {"problem": PROBLEM, "scale": SCALE,
                              "algorithm": "gk"})
        job = server.client.job(body["job"]["id"])
        assert job["state"] == "done"
        assert canonical_record(job["record"]) == \
            canonical_record(body["record"])

    def test_unknown_job_404(self, server):
        status, _headers, body = server.client.request(
            "GET", "/v1/jobs/999999-deadbeef")
        assert status == 404
        assert body["error"]["type"] == "UnknownJob"


class TestValidation4xx:
    def test_unknown_algorithm(self, server):
        status, _headers, body = server.client.request(
            "POST", "/v1/order", {"problem": PROBLEM, "algorithm": "amd"})
        assert status == 400
        assert body["error"]["type"] == "UnknownAlgorithm"
        assert "rcm" in body["error"]["message"]

    def test_unknown_problem(self, server):
        status, _headers, body = server.client.request(
            "POST", "/v1/order", {"problem": "NOPE", "algorithm": "rcm"})
        assert status == 400
        assert body["error"]["type"] == "UnknownProblem"

    def test_malformed_json_body(self, server):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            server.url + "/v1/order", data=b'{"algorithm": "rcm",,,',
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=30):
                raise AssertionError("expected a 400")
        except urllib.error.HTTPError as exc:
            with exc:
                assert exc.code == 400
                assert json.loads(exc.read())["error"]["type"] == "InvalidBody"

    def test_no_pattern_source(self, server):
        status, _headers, body = server.client.request(
            "POST", "/v1/order", {"algorithm": "rcm"})
        assert status == 400

    def test_two_pattern_sources(self, server):
        status, _headers, body = server.client.request(
            "POST", "/v1/order",
            {"algorithm": "rcm", "problem": PROBLEM,
             "coo": {"n": 2, "rows": [0], "cols": [1]}})
        assert status == 400

    def test_inline_pattern_too_large(self, server):
        status, _headers, body = server.client.request(
            "POST", "/v1/order",
            {"algorithm": "rcm", "coo": {"n": 10**12, "rows": [], "cols": []}})
        assert status == 400
        assert "n" in body["error"]["message"]

    def test_bad_inline_indices(self, server):
        status, _headers, body = server.client.request(
            "POST", "/v1/order",
            {"algorithm": "rcm", "coo": {"n": 4, "rows": [0], "cols": [9]}})
        assert status == 400


class TestStoreIntegration:
    def test_warm_request_hits_the_artifact_store(self, tmp_path):
        args = ("--workers", "1", "--store", str(tmp_path / "store"))
        with ServerProcess(*args) as store_server:
            payload = {"problem": PROBLEM, "scale": SCALE,
                       "algorithm": "spectral"}
            cold = order(store_server, payload)
            assert cold["record"]["status"] == "ok"
            # Sequential identical requests do not coalesce (the first is
            # finished); warmth must come from the persistent store.
            warm = order(store_server, payload)
            assert canonical_record(warm["record"]) == \
                canonical_record(cold["record"])
            stats = store_server.client.stats()
            assert stats["store"] is not None
            assert stats["store"]["writes"] > 0, "cold request must persist"
            assert stats["store"]["hits"] > 0, "warm request must hit the store"
            assert stats["coalescing"]["computations"] == 2


class TestByteIdentityWithSuite:
    def test_server_records_match_suite_canonical_form(self, server):
        from repro.batch import run_suite

        suite = run_suite([PROBLEM], ALGORITHMS, scale=SCALE, base_seed=0)
        expected = {
            (record.problem, record.algorithm):
                json.dumps(record.to_dict(include_timing=False), sort_keys=True)
            for record in suite.records
        }
        for algorithm in ALGORITHMS:
            body = order(server, {"problem": PROBLEM, "scale": SCALE,
                                  "algorithm": algorithm, "base_seed": 0})
            served = json.dumps(canonical_record(body["record"]),
                                sort_keys=True)
            assert served == expected[(PROBLEM, algorithm)], \
                f"server and suite disagree on {PROBLEM}/{algorithm}"
