"""Fuzzing layer for the ``repro serve`` request parser and API validation.

Feeds one server process several hundred hostile inputs on two fronts —

* **raw bytes on the socket**: truncated requests (a sweep of cut points
  through a valid request), random binary garbage, invalid UTF-8, duplicate
  and conflicting headers, oversized request lines / headers / header
  counts, absurd Content-Length values, unsupported Transfer-Encoding;
* **well-formed HTTP carrying malformed JSON**: wrong types in every field,
  broken COO/CSR structures (non-monotonic indptr, out-of-range indices,
  mismatched arrays), garbage MatrixMarket / Harwell-Boeing uploads, and
  JSON edge values (NaN/Infinity literals, nulls, deep nesting) —

and pins the tentpole's hardening criterion: every answered case is a
well-formed 4xx/501 response, and the server process survives the whole
corpus (the final health check and a real ordering prove it).  The corpus
is deterministic (seeded RNG) and at least 200 cases strong, asserted
explicitly.
"""

from __future__ import annotations

import json
import random
import socket

import pytest

from tests.serve_harness import ServerProcess

#: Statuses a malformed raw-byte request may legally earn.  (200 is not in
#: here: the corpus never contains a fully valid request.)
RAW_OK_STATUSES = {400, 404, 405, 408, 413, 431, 501}

#: A complete request whose body is malformed JSON — every proper prefix of
#: it is a truncation case, the whole of it is an InvalidBody case.
TEMPLATE = (b"POST /v1/order HTTP/1.1\r\n"
            b"Host: fuzz\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 12\r\n"
            b"\r\n"
            b'{"algorithm')


def raw_corpus() -> list[bytes]:
    """The deterministic raw-byte corpus (>= 120 cases)."""
    cases = [TEMPLATE[:cut] for cut in range(1, len(TEMPLATE), 1)]

    rng = random.Random(0xBA52)
    for size in (1, 8, 64, 512, 4096):
        for _ in range(8):
            cases.append(rng.randbytes(size))

    structured = [
        # request-line shapes
        b"GET\r\n\r\n",
        b"GET /healthz\r\n\r\n",
        b"GET /healthz HTTP/1.1 extra\r\n\r\n",
        b"GET /healthz SPDY/3\r\n\r\n",
        b"GET /healthz HTTP/2.0\r\n\r\n",
        b"G\xc3\x89T /healthz HTTP/1.1\r\n\r\n",
        b"\r\n\r\n",
        b" \r\n\r\n",
        b"GET " + b"/" * 9000 + b" HTTP/1.1\r\n\r\n",
        # header shapes
        b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\n: empty-name\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nBad Name: x\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nX-\xff\xfe: binary\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nX-Big: " + b"v" * 20000 + b"\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\n" + b"X-N: 1\r\n" * 150 + b"\r\n",
        # Content-Length shapes
        b"POST /v1/order HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        b"POST /v1/order HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
        b"POST /v1/order HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 9\r\n\r\nabcd",
        b"POST /v1/order HTTP/1.1\r\nContent-Length: 67108864\r\n\r\n",
        b"POST /v1/order HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
        b"POST /v1/order HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        # body shapes on a complete envelope
        b"POST /v1/order HTTP/1.1\r\nContent-Length: 4\r\n\r\n\xff\xfe\xfd\xfc",
        b"POST /v1/order HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]",
        b"POST /v1/order HTTP/1.1\r\nContent-Length: 4\r\n\r\nnull",
    ]
    cases.extend(structured)
    return cases


def payload_corpus() -> list[str]:
    """Malformed ``/v1/order`` JSON bodies (>= 80 cases), as raw strings so
    non-standard JSON literals (NaN/Infinity) can ride too."""
    rcm = '"algorithm": "rcm"'
    coo_ok = '"coo": {"n": 4, "rows": [0, 1], "cols": [1, 2]}'
    documents = [
        # top-level shapes
        "null", "[]", '"rcm"', "123", "true", "{}",
        '{"algorithm": null}', '{"algorithm": 7}', '{"algorithm": "amd"}',
        '{"algorithm": ["rcm"]}', '{%s}' % rcm,  # no source
        '{%s, "problem": "POW9", %s}' % (rcm, coo_ok),  # two sources
        # field types
        '{%s, %s, "options": "fast"}' % (rcm, coo_ok),
        '{%s, %s, "options": {"x": {"y": [1, {"z": null}]}}}' % (rcm, coo_ok),
        '{%s, %s, "mode": "batch"}' % (rcm, coo_ok),
        '{%s, %s, "mode": 3}' % (rcm, coo_ok),
        '{%s, %s, "include_permutation": "yes"}' % (rcm, coo_ok),
        '{%s, %s, "base_seed": 1.5}' % (rcm, coo_ok),
        '{%s, %s, "base_seed": "zero"}' % (rcm, coo_ok),
        '{%s, %s, "seed": -1}' % (rcm, coo_ok),
        '{%s, %s, "seed": 1.5}' % (rcm, coo_ok),
        '{%s, %s, "timeout_s": 0}' % (rcm, coo_ok),
        '{%s, %s, "timeout_s": -2}' % (rcm, coo_ok),
        '{%s, %s, "timeout_s": "soon"}' % (rcm, coo_ok),
        '{%s, %s, "timeout_s": NaN}' % (rcm, coo_ok),
        '{%s, %s, "timeout_s": Infinity}' % (rcm, coo_ok),
        '{%s, %s, "debug_delay_s": -1}' % (rcm, coo_ok),
        '{%s, %s, "debug_delay_s": 3600}' % (rcm, coo_ok),
        '{%s, %s, "scale": 0.5}' % (rcm, coo_ok),  # scale + inline source
        '{%s, "problem": "POW9", "scale": 0}' % rcm,
        '{%s, "problem": "POW9", "scale": -1}' % rcm,
        '{%s, "problem": "POW9", "scale": "big"}' % rcm,
        '{%s, "problem": 42}' % rcm,
        '{%s, "problem": "NOSUCH"}' % rcm,
        # COO abuse
        '{%s, "coo": null}' % rcm,
        '{%s, "coo": []}' % rcm,
        '{%s, "coo": {}}' % rcm,
        '{%s, "coo": {"n": "four", "rows": [], "cols": []}}' % rcm,
        '{%s, "coo": {"n": -1, "rows": [], "cols": []}}' % rcm,
        '{%s, "coo": {"n": 1000000000000, "rows": [], "cols": []}}' % rcm,
        '{%s, "coo": {"n": 4, "rows": 7, "cols": [1]}}' % rcm,
        '{%s, "coo": {"n": 4, "rows": [0], "cols": [1, 2]}}' % rcm,
        '{%s, "coo": {"n": 4, "rows": [0.5], "cols": [1]}}' % rcm,
        '{%s, "coo": {"n": 4, "rows": ["0"], "cols": [1]}}' % rcm,
        '{%s, "coo": {"n": 4, "rows": [null], "cols": [1]}}' % rcm,
        '{%s, "coo": {"n": 4, "rows": [true], "cols": [1]}}' % rcm,
        '{%s, "coo": {"n": 4, "rows": [-1], "cols": [1]}}' % rcm,
        '{%s, "coo": {"n": 4, "rows": [0], "cols": [4]}}' % rcm,
        '{%s, "coo": {"n": 4, "rows": [[0]], "cols": [[1]]}}' % rcm,
        # CSR abuse
        '{%s, "csr": null}' % rcm,
        '{%s, "csr": {}}' % rcm,
        '{%s, "csr": {"n": 2, "indptr": "012", "indices": []}}' % rcm,
        '{%s, "csr": {"n": 2, "indptr": [0, 1], "indices": [1, 0]}}' % rcm,
        '{%s, "csr": {"n": 2, "indptr": [1, 1, 2], "indices": [0]}}' % rcm,
        '{%s, "csr": {"n": 2, "indptr": [0, 2, 1], "indices": [1, 0, 0]}}' % rcm,
        '{%s, "csr": {"n": 2, "indptr": [0, 1, 2], "indices": [5, 0]}}' % rcm,
        '{%s, "csr": {"n": 2, "indptr": [0, 1, 2], "indices": [-1, 0]}}' % rcm,
        '{%s, "csr": {"n": 2, "indptr": [0, 1, 2], "indices": [0.5, 0]}}' % rcm,
        # upload abuse
        '{%s, "matrix_market": null}' % rcm,
        '{%s, "matrix_market": 9}' % rcm,
        '{%s, "matrix_market": ""}' % rcm,
        '{%s, "matrix_market": "hello world"}' % rcm,
        '{%s, "matrix_market": "%%%%MatrixMarket matrix coordinate real general\\n"}' % rcm,
        '{%s, "matrix_market": "%%%%MatrixMarket matrix coordinate real symmetric\\n3 3 1\\n"}' % rcm,
        '{%s, "matrix_market": "%%%%MatrixMarket matrix coordinate real symmetric\\n3 3 1\\n9 9 1.0\\n"}' % rcm,
        '{%s, "matrix_market": "%%%%MatrixMarket matrix coordinate real symmetric\\n3 3 1\\n1 1 abc\\n"}' % rcm,
        '{%s, "matrix_market": "%%%%MatrixMarket matrix coordinate real symmetric\\n99999999999 99999999999 1\\n1 1 1.0\\n"}' % rcm,
        '{%s, "harwell_boeing": null}' % rcm,
        '{%s, "harwell_boeing": ""}' % rcm,
        '{%s, "harwell_boeing": "TITLE"}' % rcm,
        '{%s, "harwell_boeing": "garbage\\nmore garbage\\n1 2 3\\n"}' % rcm,
    ]
    # Random JSON-ish mutations of a valid document: deterministic
    # truncations and byte swaps that stay syntactically invalid or
    # semantically hostile.
    valid = '{"algorithm": "rcm", "coo": {"n": 4, "rows": [0, 1], "cols": [1, 2]}}'
    documents.extend(valid[:cut] for cut in range(1, len(valid) - 1, 3))
    rng = random.Random(0xC0FFEE)
    for _ in range(12):
        chars = list(valid)
        for _ in range(rng.randint(1, 4)):
            chars[rng.randrange(len(chars))] = rng.choice('{}[]",:x\x00')
        documents.append("".join(chars))
    return documents


@pytest.fixture(scope="module")
def server():
    with ServerProcess("--workers", "1") as process:
        yield process


def send_raw(server, blob: bytes) -> bytes:
    """Deliver raw bytes, half-close, and collect whatever comes back."""
    host, port = server.url.removeprefix("http://").split(":")
    with socket.create_connection((host, int(port)), timeout=15) as sock:
        sock.sendall(blob)
        sock.shutdown(socket.SHUT_WR)
        sock.settimeout(15)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


def response_status(raw: bytes) -> int:
    head = raw.split(b"\r\n", 1)[0].decode("ascii", "replace")
    parts = head.split()
    assert parts and parts[0] == "HTTP/1.1", f"malformed status line {head!r}"
    return int(parts[1])


class TestRawProtocolFuzz:
    def test_corpus_is_large_enough(self):
        assert len(raw_corpus()) + len(payload_corpus()) >= 200

    def test_server_survives_raw_garbage(self, server):
        for index, blob in enumerate(raw_corpus()):
            raw = send_raw(server, blob)
            if raw:  # silence is legal only for a clean early close
                status = response_status(raw)
                assert status in RAW_OK_STATUSES, \
                    f"case {index}: unexpected status {status} for {blob[:60]!r}"
            if index % 25 == 0:
                assert server.client.health() == {"status": "ok"}
        assert server.client.health() == {"status": "ok"}


class TestPayloadFuzz:
    def test_every_malformed_payload_is_a_4xx(self, server):
        import urllib.error
        import urllib.request

        for index, document in enumerate(payload_corpus()):
            request = urllib.request.Request(
                server.url + "/v1/order", data=document.encode("utf-8"),
                headers={"Content-Type": "application/json"}, method="POST")
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    raise AssertionError(
                        f"case {index}: {document[:80]!r} was accepted "
                        f"({response.status})")
            except urllib.error.HTTPError as exc:
                with exc:
                    assert 400 <= exc.code < 500, \
                        f"case {index}: {document[:80]!r} -> {exc.code}"
                    body = json.loads(exc.read())
                    assert "error" in body and "type" in body["error"]
        assert server.client.health() == {"status": "ok"}

    def test_server_still_computes_after_the_corpus(self, server):
        body = server.client.order(
            {"problem": "POW9", "scale": 0.02, "algorithm": "rcm"})
        assert body["record"]["status"] == "ok"
