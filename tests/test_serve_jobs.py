"""In-process tests for the serve job registry and crash-tolerant journal.

The journal satellite of the serving tentpole: the job journal follows the
batch engine's JSONL stream discipline, so a server killed mid-append must
leave a file that replays cleanly (truncated tail dropped, never treated as
corruption) and that a restarted server can keep appending to without
splicing into a partial record.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.jobs import JobJournal, JobRegistry


def make_finished_job(registry, index: int):
    job = registry.new_job(f"key-{index}", algorithm="rcm", problem="POW9",
                          mode="sync", coalesced=False)
    registry.finish(job, http_status=200,
                    record={"status": "ok", "n": index}, permutation=None)
    return job


class TestJobRegistry:
    def test_ids_are_unique_and_ordered(self):
        registry = JobRegistry()
        ids = [make_finished_job(registry, i).id for i in range(5)]
        assert len(set(ids)) == 5
        assert [i.split("-")[0] for i in ids] == sorted(
            i.split("-")[0] for i in ids)

    def test_eviction_drops_oldest_finished_first(self):
        registry = JobRegistry(capacity=3)
        pending = registry.new_job("key-p", algorithm="rcm", problem="POW9",
                                   mode="async", coalesced=False)
        finished = [make_finished_job(registry, i) for i in range(3)]
        assert len(registry) == 3
        assert registry.get(pending.id) is pending, \
            "a pending job must never be evicted"
        assert registry.get(finished[0].id) is None
        assert registry.get(finished[-1].id) is finished[-1]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            JobRegistry(capacity=0)


class TestJobJournal:
    def test_write_then_replay_round_trip(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        registry = JobRegistry()
        journal = JobJournal(path)
        jobs = [make_finished_job(registry, i) for i in range(3)]
        for job in jobs:
            journal.record_job(job)
        journal.close()
        replayed = JobJournal.replay(path)
        assert [j["id"] for j in replayed] == [j.id for j in jobs]
        assert replayed[0]["record"] == {"status": "ok", "n": 0}

    def test_replay_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        registry = JobRegistry()
        journal = JobJournal(path)
        for i in range(3):
            journal.record_job(make_finished_job(registry, i))
        journal.close()
        path.write_bytes(path.read_bytes()[:-25])  # kill mid-append
        replayed = JobJournal.replay(path)
        assert [j["record"]["n"] for j in replayed] == [0, 1]

    def test_append_after_kill_trims_partial_line(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        registry = JobRegistry()
        journal = JobJournal(path)
        for i in range(2):
            journal.record_job(make_finished_job(registry, i))
        journal.close()
        path.write_bytes(path.read_bytes()[:-10])  # partial final record
        journal = JobJournal(path)  # reopen as a restarted server would
        journal.record_job(make_finished_job(registry, 7))
        journal.close()
        # Every physical line must be valid JSON again — no spliced records.
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "header"
        assert [p["record"]["n"] for p in parsed[1:]] == [0, 7]

    def test_replay_of_missing_or_empty_journal_is_no_jobs(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text("")
        assert JobJournal.replay(path) == []

    def test_replay_rejects_foreign_header(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"kind": "header",
                                    "engine": "repro.batch"}) + "\n")
        with pytest.raises(ValueError, match="repro.serve header"):
            JobJournal.replay(path)

    def test_unknown_line_kinds_are_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        registry = JobRegistry()
        journal = JobJournal(path)
        journal.record_job(make_finished_job(registry, 1))
        journal._write_line({"kind": "checkpoint", "at": 12.5})
        journal.record_job(make_finished_job(registry, 2))
        journal.close()
        assert [j["record"]["n"] for j in JobJournal.replay(path)] == [1, 2]


class TestServerJournalIntegration:
    def test_server_counts_replayed_jobs(self, tmp_path):
        from repro.serve import OrderingServer, ServeConfig

        path = tmp_path / "jobs.jsonl"
        registry = JobRegistry()
        journal = JobJournal(path)
        for i in range(4):
            journal.record_job(make_finished_job(registry, i))
        journal.close()
        path.write_bytes(path.read_bytes()[:-15])  # killed mid-append

        server = OrderingServer(ServeConfig(journal=str(path)))
        try:
            assert server.replayed_jobs == 3
            assert server.statsz()["jobs"]["replayed_from_journal"] == 3
        finally:
            server.pool.shutdown()
            server.journal.close()

    def test_server_refuses_foreign_journal(self, tmp_path):
        from repro.serve import OrderingServer, ServeConfig

        path = tmp_path / "batch.jsonl"
        path.write_text(json.dumps({"kind": "header",
                                    "engine": "repro.batch"}) + "\n")
        with pytest.raises(ValueError, match="repro.serve header"):
            OrderingServer(ServeConfig(journal=str(path)))
