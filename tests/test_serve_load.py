"""Load-behavior tests for ``repro serve``: coalescing, backpressure, crashes.

Each test boots its own server (clean counters) and drives it concurrently,
using the ``debug_delay_s`` request knob to hold workers busy for a
deterministic window.  Pins the tentpole's concurrency acceptance criteria:

* k parallel identical requests -> exactly **one** computation (the
  coalescing counters prove it);
* admission past the configured queue depth -> ``429`` with a
  ``Retry-After`` header while ``/statsz`` shows the saturated queue;
* a worker killed mid-request -> a structured 5xx, never a hang;
* the ``/statsz`` counters reconcile exactly with the requests served.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from tests.serve_harness import ServerProcess

PROBLEM = "POW9"
SCALE = 0.02
BASE = {"problem": PROBLEM, "scale": SCALE, "algorithm": "rcm"}


def post_order(server, payload):
    """Raw POST (no raise-on-4xx/5xx): returns (status, headers, body)."""
    return server.client.request("POST", "/v1/order", payload)


def wait_for(predicate, *, timeout=30.0, interval=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise TimeoutError(f"timed out waiting for {message}")


class TestCoalescing:
    def test_parallel_identical_requests_share_one_computation(self):
        k = 6
        payload = {**BASE, "debug_delay_s": 1.0}
        with ServerProcess("--workers", "2") as server:
            barrier = threading.Barrier(k)

            def fire(_index):
                barrier.wait()
                return post_order(server, payload)

            with ThreadPoolExecutor(max_workers=k) as executor:
                results = list(executor.map(fire, range(k)))

            statuses = [status for status, _h, _b in results]
            assert statuses == [200] * k
            records = {json.dumps(body["record"], sort_keys=True)
                       for _s, _h, body in results}
            assert len(records) == 1, "coalesced answers must be identical"
            flags = sorted(body["coalesced"] for _s, _h, body in results)
            assert flags == [False] + [True] * (k - 1)

            stats = server.client.stats()
            assert stats["coalescing"]["computations"] == 1
            assert stats["coalescing"]["coalesced"] == k - 1
            assert stats["coalescing"]["inflight"] == 0
            assert stats["pool"]["completed"]["ok"] == 1

    def test_distinct_requests_are_not_coalesced(self):
        with ServerProcess("--workers", "2") as server:
            first = post_order(server, {**BASE, "base_seed": 1})
            second = post_order(server, {**BASE, "base_seed": 2})
            assert first[0] == second[0] == 200
            stats = server.client.stats()
            assert stats["coalescing"]["computations"] == 2
            assert stats["coalescing"]["coalesced"] == 0


class TestSaturation:
    def test_full_queue_sheds_429_with_retry_after(self):
        args = ("--workers", "1", "--queue-depth", "1", "--retry-after", "7")
        with ServerProcess(*args) as server:
            slow = {**BASE, "debug_delay_s": 4.0}
            outcomes = []

            def fire(seed):
                outcomes.append(post_order(server, {**slow, "base_seed": seed}))

            runner = threading.Thread(target=fire, args=(1,))
            runner.start()
            wait_for(lambda: server.client.stats()["pool"]["busy"] == 1,
                     message="first request to occupy the worker")
            waiter = threading.Thread(target=fire, args=(2,))
            waiter.start()
            wait_for(lambda: server.client.stats()["pool"]["queue_depth"] == 1,
                     message="second request to fill the queue")

            status, headers, body = post_order(server, {**slow, "base_seed": 3})
            assert status == 429
            assert headers.get("Retry-After") == "7"
            assert body["error"]["type"] == "PoolSaturated"
            assert body["queue_depth"] == 1
            assert body["retry_after_s"] == 7

            # The saturated state is observable while the shed happens.
            stats = server.client.stats()
            assert stats["requests"]["shed"] == 1
            assert stats["pool"]["queue_depth"] == 1
            assert stats["pool"]["max_queue"] == 1

            runner.join(60)
            waiter.join(60)
            assert [status for status, _h, _b in outcomes] == [200, 200]

    def test_shed_request_succeeds_after_drain(self):
        args = ("--workers", "1", "--queue-depth", "0")
        with ServerProcess(*args) as server:
            holder = threading.Thread(
                target=post_order,
                args=(server, {**BASE, "base_seed": 1, "debug_delay_s": 2.0}))
            holder.start()
            wait_for(lambda: server.client.stats()["pool"]["busy"] == 1,
                     message="holder to occupy the worker")
            status, _headers, _body = post_order(server, {**BASE, "base_seed": 2})
            assert status == 429
            holder.join(60)
            wait_for(lambda: server.client.stats()["pool"]["busy"] == 0,
                     message="pool to drain")
            status, _headers, body = post_order(server, {**BASE, "base_seed": 2})
            assert status == 200
            assert body["record"]["status"] == "ok"


class TestWorkerCrash:
    def test_killed_worker_yields_structured_500_not_a_hang(self):
        with ServerProcess("--workers", "1") as server:
            result = {}

            def fire():
                result["response"] = post_order(
                    server, {**BASE, "debug_delay_s": 20.0})

            thread = threading.Thread(target=fire)
            thread.start()
            pids = wait_for(
                lambda: server.client.stats()["pool"]["active_pids"],
                message="the worker subprocess to register")
            os.kill(pids[0], signal.SIGKILL)

            thread.join(30)
            assert not thread.is_alive(), "crash must answer, not hang"
            status, _headers, body = result["response"]
            assert status == 500
            assert body["error"]["type"] == "WorkerCrashed"
            assert body["record"]["status"] == "error"
            assert server.client.stats()["pool"]["completed"]["crashed"] == 1

    def test_request_timeout_yields_504(self):
        with ServerProcess("--workers", "1") as server:
            status, _headers, body = post_order(
                server, {**BASE, "algorithm": "sloan", "timeout_s": 0.001})
            assert status == 504
            assert body["error"]["type"] == "TaskTimeout"
            assert body["record"]["status"] == "timeout"
            assert server.client.stats()["pool"]["completed"]["timeout"] == 1


class TestCounterReconciliation:
    def test_statsz_counters_reconcile_with_requests_served(self):
        k = 3
        with ServerProcess("--workers", "2") as server:
            payload = {**BASE, "debug_delay_s": 0.8}
            barrier = threading.Barrier(k)

            def fire(_index):
                barrier.wait()
                return post_order(server, payload)

            with ThreadPoolExecutor(max_workers=k) as executor:
                coalesced_statuses = [s for s, _h, _b in
                                      executor.map(fire, range(k))]
            assert coalesced_statuses == [200] * k

            distinct_status, _h, _b = post_order(server, {**BASE, "base_seed": 9})
            bad_status, _h, _b = post_order(
                server, {**BASE, "algorithm": "amd"})
            assert (distinct_status, bad_status) == (200, 400)
            assert server.client.health() == {"status": "ok"}

            stats = server.client.stats()
            requests = stats["requests"]
            # The statsz snapshot is taken before its own response is
            # counted, so the response classes sum to every request but it.
            assert sum(requests["responses"].values()) == requests["total"] - 1
            assert requests["order"] == k + 2
            assert requests["shed"] == 0
            assert requests["responses"]["4xx"] == 1
            assert requests["responses"]["5xx"] == 0
            coalescing = stats["coalescing"]
            assert coalescing["computations"] == 2
            assert coalescing["coalesced"] == k - 1
            assert stats["pool"]["completed"] == {
                "ok": 2, "error": 0, "timeout": 0, "crashed": 0}
            assert stats["jobs"]["tracked"] == k + 1
