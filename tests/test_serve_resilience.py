"""Resilience-layer tests for ``repro serve`` and its client.

Unit-level: the :class:`CircuitBreaker` state machine under a fake clock,
``ServerClient.order_with_retries`` against scripted transport outcomes,
and :class:`JobJournal` replay/skip accounting.  Integration-level (real
subprocess via :mod:`tests.serve_harness`): the boot line's separate
``replayed``/``skipped`` counts and the graceful SIGTERM drain — the
server must answer every admitted request and exit 0.
"""

from __future__ import annotations

import json
import signal
import threading
import time
import urllib.error

import pytest

from repro.serve import (
    BreakerBoard,
    CircuitBreaker,
    JobJournal,
    ReplayedJobs,
    ServerClient,
    ServerError,
)
from tests.serve_harness import ServerProcess

PROBLEM = "POW9"
SCALE = 0.02
BASE = {"problem": PROBLEM, "scale": SCALE, "algorithm": "rcm"}


class FakeClock:
    def __init__(self, start: float = 100.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


# --------------------------------------------------------------------- #
# CircuitBreaker state machine
# --------------------------------------------------------------------- #
class TestCircuitBreaker:
    def _breaker(self, **overrides):
        clock = FakeClock()
        defaults = dict(threshold=3, cooldown_s=30.0, clock=clock)
        defaults.update(overrides)
        return CircuitBreaker(**defaults), clock

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown_s=0.0)

    def test_stays_closed_below_threshold(self):
        breaker, _clock = self._breaker()
        for _ in range(2):
            breaker.record(crashed=True)
        assert breaker.state == "closed"
        assert breaker.allow() == (True, 0.0)

    def test_success_resets_the_consecutive_count(self):
        breaker, _clock = self._breaker()
        breaker.record(crashed=True)
        breaker.record(crashed=True)
        breaker.record(crashed=False)
        breaker.record(crashed=True)
        breaker.record(crashed=True)
        assert breaker.state == "closed"      # never 3 *consecutive*

    def test_trips_open_at_threshold_and_sheds(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record(crashed=True)
        assert breaker.state == "open"
        assert breaker.trips == 1
        clock.advance(10.0)
        allowed, retry_in = breaker.allow()
        assert not allowed
        assert retry_in == pytest.approx(20.0)
        assert breaker.rejected == 1

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record(crashed=True)
        clock.advance(31.0)
        assert breaker.allow() == (True, 0.0)
        assert breaker.state == "half-open"
        allowed, retry_in = breaker.allow()   # concurrent request during probe
        assert not allowed and retry_in == pytest.approx(30.0)

    def test_probe_success_closes(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record(crashed=True)
        clock.advance(31.0)
        assert breaker.allow()[0]
        breaker.record(crashed=False)
        assert breaker.state == "closed"
        assert breaker.consecutive_crashes == 0
        assert breaker.allow() == (True, 0.0)

    def test_probe_crash_reopens_with_fresh_cooldown(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record(crashed=True)
        clock.advance(31.0)
        assert breaker.allow()[0]
        breaker.record(crashed=True)          # probe crashed
        assert breaker.state == "open"
        assert breaker.trips == 2
        allowed, retry_in = breaker.allow()
        assert not allowed
        assert retry_in == pytest.approx(30.0)  # cooldown restarted

    def test_abort_releases_the_probe_slot(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record(crashed=True)
        clock.advance(31.0)
        assert breaker.allow()[0]             # probe admitted
        breaker.abort()                       # ...but never computed
        assert breaker.allow()[0]             # slot free again

    def test_to_dict_reports_remaining_cooldown_when_open(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record(crashed=True)
        clock.advance(12.0)
        payload = breaker.to_dict()
        assert payload["state"] == "open"
        assert payload["trips"] == 1
        assert payload["retry_after_s"] == pytest.approx(18.0)
        breaker.record(crashed=False)
        assert "retry_after_s" not in breaker.to_dict()


class TestBreakerBoard:
    def test_threshold_zero_disables_the_board(self):
        board = BreakerBoard(threshold=0)
        assert not board.enabled
        for _ in range(10):
            board.record("rcm", crashed=True)
        assert board.allow("rcm") == (True, 0.0)
        assert board.stats() == {}
        assert board.open_algorithms() == []

    def test_breakers_are_per_algorithm(self):
        clock = FakeClock()
        board = BreakerBoard(threshold=2, cooldown_s=5.0, clock=clock)
        board.record("gk", crashed=True)
        board.record("gk", crashed=True)
        assert board.open_algorithms() == ["gk"]
        assert board.allow("gk")[0] is False
        assert board.allow("rcm") == (True, 0.0)   # unaffected
        stats = board.stats()
        assert stats["gk"]["state"] == "open"
        assert stats["rcm"]["state"] == "closed"

    def test_abort_on_untouched_algorithm_is_a_noop(self):
        board = BreakerBoard(threshold=2)
        board.abort("never-seen")              # must not create state
        assert board.stats() == {}


# --------------------------------------------------------------------- #
# Client retry policy (scripted transport, no sockets)
# --------------------------------------------------------------------- #
class TestOrderWithRetries:
    def _client(self, responses):
        """A ServerClient whose ``request`` replays a script.

        Each script entry is either an exception (raised) or a
        ``(status, headers, body)`` tuple.  Returns (client, calls, sleeps).
        """
        client = ServerClient("http://127.0.0.1:9")   # never dialled
        calls, sleeps = [], []
        script = list(responses)

        def request(method, path, payload=None):
            calls.append((method, path))
            outcome = script.pop(0)
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome

        client.request = request
        return client, calls, sleeps

    def test_success_needs_no_retries(self):
        client, calls, sleeps = self._client([(200, {}, {"ok": True})])
        body = client.order_with_retries(BASE, retries=5, sleep=sleeps.append)
        assert body == {"ok": True}
        assert len(calls) == 1 and sleeps == []

    def test_retry_after_header_overrides_backoff(self):
        client, calls, sleeps = self._client([
            (503, {"Retry-After": "1.5"}, {"error": {"type": "Draining"}}),
            (200, {}, {"ok": True}),
        ])
        body = client.order_with_retries(BASE, retries=3, backoff_s=0.01,
                                         sleep=sleeps.append)
        assert body == {"ok": True}
        assert sleeps == [pytest.approx(1.5)]

    def test_exponential_backoff_without_header(self):
        client, _calls, sleeps = self._client([
            (429, {}, {}), (429, {}, {}), (200, {}, {"ok": True}),
        ])
        client.order_with_retries(BASE, retries=4, backoff_s=0.1,
                                  sleep=sleeps.append)
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_backoff_and_retry_after_are_capped(self):
        client, _calls, sleeps = self._client([
            (503, {"Retry-After": "100"}, {}),   # header above the cap
            (503, {}, {}),                       # exponential above the cap
            (200, {}, {"ok": True}),
        ])
        client.order_with_retries(BASE, retries=4, backoff_s=10.0,
                                  max_backoff_s=2.0, sleep=sleeps.append)
        assert sleeps == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_bad_request_raises_immediately(self):
        client, calls, sleeps = self._client([
            (400, {}, {"error": {"type": "BadRequest", "message": "nope"}}),
        ])
        with pytest.raises(ServerError) as excinfo:
            client.order_with_retries(BASE, retries=5, sleep=sleeps.append)
        assert excinfo.value.status == 400
        assert len(calls) == 1 and sleeps == []   # waiting cannot fix a 400

    def test_exhausted_retries_raise_the_last_answer(self):
        client, calls, sleeps = self._client([(503, {}, {})] * 3)
        with pytest.raises(ServerError) as excinfo:
            client.order_with_retries(BASE, retries=2, backoff_s=0.01,
                                      sleep=sleeps.append)
        assert excinfo.value.status == 503
        assert len(calls) == 3 and len(sleeps) == 2

    def test_connection_refused_is_retried(self):
        client, calls, sleeps = self._client([
            urllib.error.URLError(ConnectionRefusedError("refused")),
            ConnectionResetError("reset"),
            (200, {}, {"ok": True}),
        ])
        body = client.order_with_retries(BASE, retries=3, backoff_s=0.01,
                                         sleep=sleeps.append)
        assert body == {"ok": True}
        assert len(calls) == 3 and len(sleeps) == 2

    def test_transport_error_exhausted_propagates(self):
        client, _calls, sleeps = self._client([ConnectionResetError("reset")] * 2)
        with pytest.raises(ConnectionResetError):
            client.order_with_retries(BASE, retries=1, backoff_s=0.01,
                                      sleep=sleeps.append)
        assert len(sleeps) == 1

    def test_zero_retries_matches_plain_order_semantics(self):
        client, calls, _sleeps = self._client([(503, {}, {})])
        with pytest.raises(ServerError):
            client.order_with_retries(BASE, retries=0)
        assert len(calls) == 1


# --------------------------------------------------------------------- #
# Journal replay accounting
# --------------------------------------------------------------------- #
def _header_line() -> str:
    return json.dumps({"kind": "header", "engine": "repro.serve",
                       "journal_schema": 1})


def _job_line(index: int) -> str:
    return json.dumps({
        "kind": "job", "id": f"{index:06d}-cafe", "key": f"key-{index}",
        "algorithm": "rcm", "problem": PROBLEM, "mode": "sync",
        "state": "done", "coalesced": False, "created_s": 1.0,
        "finished_s": 2.0, "http_status": 200, "record": None,
        "permutation": None,
    })


class TestJournalReplay:
    def test_counts_replayed_and_skipped_separately(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("\n".join([
            _header_line(),
            _job_line(1),
            json.dumps({"kind": "future-extension", "x": 1}),  # unknown kind
            "{this line is torn",                              # damaged
            _job_line(2),
        ]) + "\n")
        replayed = JobJournal.replay(path)
        assert [job["id"] for job in replayed] == ["000001-cafe", "000002-cafe"]
        assert replayed.skipped == 2

    def test_replayed_jobs_still_behaves_like_a_list(self):
        replayed = ReplayedJobs([], skipped=3)
        assert replayed == []
        assert replayed.skipped == 3

    def test_empty_journal_replays_nothing(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("")
        replayed = JobJournal.replay(path)
        assert replayed == [] and replayed.skipped == 0

    def test_foreign_header_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"kind": "header", "engine": "elsewhere"})
                        + "\n")
        with pytest.raises(ValueError, match="header"):
            JobJournal.replay(path)

    def test_record_job_retries_transient_write_failures(self, tmp_path,
                                                         monkeypatch):
        from repro import faults
        from repro.serve.jobs import Job

        failures = {"left": 2}

        def flaky(site, key):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError(f"injected {site} fault")

        monkeypatch.setattr(faults, "flaky_io", flaky)
        journal = JobJournal(tmp_path / "journal.jsonl")
        job = Job(id="000001-cafe", key="k", algorithm="rcm", problem=PROBLEM,
                  state="done")
        journal.record_job(job, retries=2)    # two failures absorbed
        journal.close()
        replayed = JobJournal.replay(tmp_path / "journal.jsonl")
        assert len(replayed) == 1 and replayed.skipped == 0

        failures["left"] = 10                 # more failures than retries
        journal = JobJournal(tmp_path / "journal2.jsonl")
        with pytest.raises(OSError):
            journal.record_job(job, retries=2)
        journal.close()


# --------------------------------------------------------------------- #
# Integration: boot-line accounting and graceful drain (real subprocess)
# --------------------------------------------------------------------- #
class TestBootAccounting:
    def test_boot_line_reports_replayed_and_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("\n".join([
            _header_line(), _job_line(1), "{torn", _job_line(2),
        ]) + "\n")
        with ServerProcess("--workers", "1", "--journal", str(path)) as server:
            journal_line = server.proc.stdout.readline()
            assert "2 finished job(s) replayed" in journal_line
            assert "1 line(s) skipped" in journal_line
            stats = server.client.stats()
            assert stats["jobs"]["replayed_from_journal"] == 2
            assert stats["jobs"]["journal_skipped"] == 1


class TestGracefulDrain:
    def test_sigterm_drains_in_flight_and_exits_zero(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        server = ServerProcess("--workers", "1", "--journal", str(journal),
                               "--drain-grace", "30")
        outcome = {}
        try:
            def slow_order():
                try:
                    outcome["response"] = server.client.request(
                        "POST", "/v1/order", {**BASE, "debug_delay_s": 1.5})
                except Exception as exc:   # noqa: BLE001 - recorded for assert
                    outcome["error"] = exc

            thread = threading.Thread(target=slow_order, daemon=True)
            thread.start()
            time.sleep(0.5)                # let the order reach a worker
            server.proc.send_signal(signal.SIGTERM)
            returncode = server.proc.wait(timeout=60)
            thread.join(timeout=60)
            assert returncode == 0, "drain must exit 0, not crash"
            assert "error" not in outcome, f"in-flight order failed: {outcome}"
            status, _headers, body = outcome["response"]
            assert status == 200
            assert body["record"]["status"] == "ok"
            tail = server.proc.stdout.read()
            assert "drained" in tail
            # The admitted job reached the journal before shutdown.
            replayed = JobJournal.replay(journal)
            assert len(replayed) == 1 and replayed.skipped == 0
            assert replayed[0]["state"] == "done"
        finally:
            server.stop()

    def test_new_requests_rejected_while_draining(self):
        with ServerProcess("--workers", "1", "--drain-grace", "5") as server:
            hold = threading.Thread(
                target=lambda: server.client.request(
                    "POST", "/v1/order", {**BASE, "debug_delay_s": 2.0}),
                daemon=True)
            hold.start()
            time.sleep(0.5)
            server.proc.send_signal(signal.SIGTERM)
            time.sleep(0.3)                # drain flag set, still alive
            try:
                status, headers, _body = server.client.request(
                    "POST", "/v1/order", {**BASE, "base_seed": 9})
            except Exception:
                # The listener may already be gone — equally a rejection.
                pass
            else:
                assert status == 503
                assert any(str(k).lower() == "retry-after" for k in headers)
            hold.join(timeout=30)
            assert server.proc.wait(timeout=30) == 0
