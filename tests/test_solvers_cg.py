"""Unit tests for the conjugate-gradient solver (repro.solvers.cg)."""

import numpy as np
import pytest

from repro.solvers.cg import conjugate_gradient
from repro.solvers.ic import jacobi_preconditioner


class TestConjugateGradient:
    def test_solves_spd_system(self, spd_grid_matrix, rng):
        x_true = rng.standard_normal(spd_grid_matrix.shape[0])
        b = spd_grid_matrix @ x_true
        result = conjugate_gradient(spd_grid_matrix, b, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-6)

    def test_residual_history_decreases_overall(self, spd_grid_matrix, rng):
        b = rng.standard_normal(spd_grid_matrix.shape[0])
        result = conjugate_gradient(spd_grid_matrix, b, tol=1e-10)
        assert result.residual_norms[-1] < result.residual_norms[0]
        assert len(result.residual_norms) == result.iterations + 1

    def test_zero_rhs_converges_immediately(self, spd_grid_matrix):
        result = conjugate_gradient(spd_grid_matrix, np.zeros(spd_grid_matrix.shape[0]))
        assert result.converged
        assert result.iterations == 0

    def test_exact_convergence_in_n_iterations_small(self):
        rng = np.random.default_rng(0)
        m = rng.standard_normal((6, 6))
        a = m @ m.T + 6 * np.eye(6)
        b = rng.standard_normal(6)
        result = conjugate_gradient(a, b, tol=1e-12)
        assert result.converged
        assert result.iterations <= 6 + 1

    def test_initial_guess_used(self, spd_grid_matrix, rng):
        x_true = rng.standard_normal(spd_grid_matrix.shape[0])
        b = spd_grid_matrix @ x_true
        result = conjugate_gradient(spd_grid_matrix, b, x0=x_true.copy(), tol=1e-10)
        assert result.iterations == 0

    def test_preconditioner_reduces_iterations(self, spd_grid_matrix, rng):
        # scale the system badly so Jacobi actually helps
        n = spd_grid_matrix.shape[0]
        scale = np.linspace(1.0, 1000.0, n)
        import scipy.sparse as sp

        d = sp.diags(np.sqrt(scale))
        a = (d @ spd_grid_matrix @ d).tocsr()
        b = rng.standard_normal(n)
        plain = conjugate_gradient(a, b, tol=1e-8)
        jacobi = conjugate_gradient(a, b, preconditioner=jacobi_preconditioner(a), tol=1e-8)
        assert jacobi.converged
        assert jacobi.iterations < plain.iterations

    def test_max_iter_respected(self, spd_grid_matrix, rng):
        b = rng.standard_normal(spd_grid_matrix.shape[0])
        result = conjugate_gradient(spd_grid_matrix, b, tol=1e-14, max_iter=3)
        assert result.iterations <= 3

    def test_shape_validation(self, spd_grid_matrix):
        with pytest.raises(ValueError):
            conjugate_gradient(spd_grid_matrix, np.ones(3))

    def test_final_relative_residual(self, spd_grid_matrix, rng):
        b = rng.standard_normal(spd_grid_matrix.shape[0])
        result = conjugate_gradient(spd_grid_matrix, b, tol=1e-9)
        assert result.final_relative_residual <= 1e-9 * 1.01
