"""Unit tests for the IC(0) preconditioner (repro.solvers.ic) and the PCG experiment."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.collections.generators import random_geometric_pattern
from repro.orderings.cuthill_mckee import rcm_ordering
from repro.orderings.spectral import spectral_ordering
from repro.solvers.cg import conjugate_gradient
from repro.solvers.experiment import preconditioned_cg_experiment
from repro.solvers.ic import incomplete_cholesky, jacobi_preconditioner


class TestIncompleteCholesky:
    def test_pattern_preserved(self, spd_grid_matrix):
        ic = incomplete_cholesky(spd_grid_matrix)
        lower = sp.tril(spd_grid_matrix)
        assert ic.nnz() == lower.nnz
        assert ic.shifted == 0.0

    def test_exact_on_tridiagonal(self):
        # IC(0) of a tridiagonal SPD matrix is the exact Cholesky factor
        # (the envelope has no positions to drop).
        n = 12
        a = sp.diags([-1.0 * np.ones(n - 1), 2.5 * np.ones(n), -1.0 * np.ones(n - 1)],
                     [-1, 0, 1], format="csr")
        ic = incomplete_cholesky(a)
        exact = np.linalg.cholesky(a.toarray())
        np.testing.assert_allclose(ic.factor.toarray(), exact, atol=1e-12)

    def test_apply_is_spd_operation(self, spd_grid_matrix, rng):
        ic = incomplete_cholesky(spd_grid_matrix)
        r = rng.standard_normal(spd_grid_matrix.shape[0])
        z = ic.apply(r)
        assert np.dot(r, z) > 0  # M^{-1} must be positive definite

    def test_preconditions_cg(self, grid_12x9, rng):
        matrix = grid_12x9.to_scipy("spd")
        b = rng.standard_normal(grid_12x9.n)
        plain = conjugate_gradient(matrix, b, tol=1e-9)
        ic = incomplete_cholesky(matrix)
        pcg = conjugate_gradient(matrix, b, preconditioner=ic.apply, tol=1e-9)
        assert pcg.converged
        assert pcg.iterations <= plain.iterations
        np.testing.assert_allclose(matrix @ pcg.x, b, atol=1e-6)

    def test_ordering_argument(self, grid_8x6, spd_grid_matrix):
        ordering = rcm_ordering(grid_8x6)
        ic = incomplete_cholesky(spd_grid_matrix, perm=ordering.perm)
        assert ic.n == grid_8x6.n

    def test_nonpositive_diagonal_rejected(self):
        a = sp.csr_matrix(np.array([[1.0, 0.5], [0.5, -1.0]]))
        with pytest.raises(np.linalg.LinAlgError):
            incomplete_cholesky(a)

    def test_shifting_rescues_difficult_matrix(self):
        # A barely-SPD matrix on which plain IC(0) breaks down but shifting works.
        n = 30
        rng = np.random.default_rng(5)
        pattern = random_geometric_pattern(n, radius=0.45, seed=5)
        adj = pattern.to_scipy("adjacency")
        degrees = np.asarray(adj.sum(axis=1)).ravel()
        a = (sp.diags(degrees + 1e-3) - adj).tocsr()  # nearly singular SPD
        ic = incomplete_cholesky(a)
        assert np.isfinite(ic.factor.data).all()


class TestJacobi:
    def test_apply(self, spd_grid_matrix, rng):
        apply_m = jacobi_preconditioner(spd_grid_matrix)
        r = rng.standard_normal(spd_grid_matrix.shape[0])
        np.testing.assert_allclose(apply_m(r), r / spd_grid_matrix.diagonal())

    def test_zero_diagonal_rejected(self):
        with pytest.raises(np.linalg.LinAlgError):
            jacobi_preconditioner(sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]])))


class TestPcgExperiment:
    def test_solution_correct_under_each_ordering(self, grid_12x9, rng):
        matrix = grid_12x9.to_scipy("spd")
        x_true = rng.standard_normal(grid_12x9.n)
        b = matrix @ x_true
        for ordering in (None, rcm_ordering(grid_12x9), spectral_ordering(grid_12x9, method="dense")):
            result = preconditioned_cg_experiment(matrix, b, ordering, tol=1e-10)
            np.testing.assert_allclose(result.x, x_true, atol=1e-6)
            assert result.cg.converged

    def test_preconditioner_choices(self, grid_8x6, rng):
        matrix = grid_8x6.to_scipy("spd")
        b = rng.standard_normal(grid_8x6.n)
        iterations = {}
        for name in ("none", "jacobi", "ic0"):
            result = preconditioned_cg_experiment(matrix, b, None, preconditioner=name, tol=1e-9)
            iterations[name] = result.iterations
            assert result.preconditioner == name
        assert iterations["ic0"] <= iterations["none"]

    def test_invalid_preconditioner(self, grid_8x6):
        matrix = grid_8x6.to_scipy("spd")
        with pytest.raises(ValueError):
            preconditioned_cg_experiment(matrix, np.ones(grid_8x6.n), None, preconditioner="ilu")

    def test_ordering_name_recorded(self, grid_8x6, rng):
        matrix = grid_8x6.to_scipy("spd")
        b = rng.standard_normal(grid_8x6.n)
        result = preconditioned_cg_experiment(matrix, b, rcm_ordering(grid_8x6))
        assert result.ordering_name == "rcm"
        assert result.setup_time >= 0 and result.solve_time >= 0
