"""Unit tests for the Harwell-Boeing reader/writer (repro.sparse.io_hb)."""

import io

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.io_hb import read_harwell_boeing, write_harwell_boeing, _parse_fortran_format


def _spd_matrix(n=15, seed=0):
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=0.15, random_state=np.random.RandomState(seed), format="csr")
    a = a + a.T + sp.eye(n) * n
    return a.tocsr()


class TestFortranFormatParsing:
    @pytest.mark.parametrize(
        "fmt, expected",
        [
            ("(16I5)", (16, 5, "I")),
            ("(10I8)", (10, 8, "I")),
            ("(5E16.8)", (5, 16, "E")),
            ("(4D20.12)", (4, 20, "D")),
            ("(3F20.16)", (3, 20, "F")),
            ("16I5", (16, 5, "I")),
            ("(1P5E16.9)", (5, 16, "E")),
        ],
    )
    def test_common_formats(self, fmt, expected):
        assert _parse_fortran_format(fmt) == expected

    def test_invalid_format(self):
        with pytest.raises(ValueError):
            _parse_fortran_format("(ABC)")


class TestRoundTrip:
    def test_rsa_roundtrip(self, tmp_path):
        a = _spd_matrix()
        path = tmp_path / "m.rsa"
        write_harwell_boeing(path, a, title="round trip test", key="TEST")
        b = read_harwell_boeing(path)
        np.testing.assert_allclose(b.toarray(), a.toarray(), rtol=1e-12)

    def test_psa_pattern_roundtrip(self, tmp_path):
        a = _spd_matrix(seed=2)
        path = tmp_path / "m.psa"
        write_harwell_boeing(path, a, pattern_only=True)
        b = read_harwell_boeing(path)
        np.testing.assert_array_equal(b.toarray() != 0, a.toarray() != 0)

    def test_header_fields(self, tmp_path):
        a = _spd_matrix(seed=3)
        path = tmp_path / "m.rsa"
        write_harwell_boeing(path, a, title="my title", key="KEY12345")
        matrix, header = read_harwell_boeing(path, return_header=True)
        assert header.title == "my title"
        assert header.key == "KEY12345"
        assert header.mxtype == "RSA"
        assert header.nrow == a.shape[0]
        assert header.nnzero == sp.tril(a).nnz

    def test_stream_roundtrip(self):
        a = _spd_matrix(8, seed=5)
        buf = io.StringIO()
        write_harwell_boeing(buf, a)
        buf.seek(0)
        b = read_harwell_boeing(buf)
        np.testing.assert_allclose(b.toarray(), a.toarray(), rtol=1e-12)


class TestUnsymmetricRead:
    def test_rua_is_read_without_mirroring(self):
        # Hand-built tiny RUA file: 2x2 with entries (1,1)=4, (2,1)=1, (2,2)=3.
        lines = [
            f"{'tiny unsymmetric':<72}{'RUA1':<8}",
            f"{3:>14d}{1:>14d}{1:>14d}{1:>14d}{0:>14d}",
            f"{'RUA':<3}{'':11}{2:>14d}{2:>14d}{3:>14d}{0:>14d}",
            f"{'(10I10)':<16}{'(10I10)':<16}{'(4E24.16)':<20}{'':<20}",
            f"{1:>10d}{3:>10d}{4:>10d}",
            f"{1:>10d}{2:>10d}{2:>10d}",
            f"{4.0:>24.16E}{1.0:>24.16E}{3.0:>24.16E}",
        ]
        matrix = read_harwell_boeing(io.StringIO("\n".join(lines) + "\n"))
        np.testing.assert_allclose(matrix.toarray(), [[4.0, 0.0], [1.0, 3.0]])


class TestErrors:
    def test_empty_file(self):
        with pytest.raises(ValueError, match="empty"):
            read_harwell_boeing(io.StringIO(""))

    def test_rectangular_write_rejected(self):
        with pytest.raises(ValueError, match="square"):
            write_harwell_boeing(io.StringIO(), sp.csr_matrix(np.zeros((2, 3))))

    def test_elemental_rejected(self):
        lines = [
            f"{'elemental':<72}{'KEY':<8}",
            f"{1:>14d}{1:>14d}{0:>14d}{0:>14d}{0:>14d}",
            f"{'RSE':<3}{'':11}{2:>14d}{2:>14d}{3:>14d}{3:>14d}",
            f"{'(10I10)':<16}{'(10I10)':<16}{'(4E24.16)':<20}{'':<20}",
        ]
        with pytest.raises(ValueError, match="elemental"):
            read_harwell_boeing(io.StringIO("\n".join(lines) + "\n"))
