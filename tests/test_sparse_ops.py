"""Unit tests for repro.sparse.ops."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.ops import (
    lower_triangle,
    permute_pattern,
    permute_symmetric,
    structural_density,
    structure_from_matrix,
    symmetrize,
)
from repro.sparse.pattern import SymmetricPattern


class TestStructureFromMatrix:
    def test_pattern_passthrough(self):
        p = SymmetricPattern.from_edges(3, [(0, 1)])
        assert structure_from_matrix(p) is p

    def test_from_sparse(self):
        a = sp.csr_matrix(np.array([[2.0, -1.0], [-1.0, 2.0]]))
        p = structure_from_matrix(a)
        assert p.n == 2 and p.num_edges == 1

    def test_from_dense(self):
        p = structure_from_matrix(np.eye(4))
        assert p.num_edges == 0

    def test_tolerance(self):
        a = np.array([[1.0, 1e-13], [1e-13, 1.0]])
        assert structure_from_matrix(a, tol=1e-10).num_edges == 0
        assert structure_from_matrix(a, tol=0.0).num_edges == 1


class TestSymmetrize:
    def test_or_mode_unions_patterns(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        s = symmetrize(a, mode="or").toarray()
        assert s[0, 1] == pytest.approx(1.0)
        assert s[1, 0] == pytest.approx(1.0)
        np.testing.assert_allclose(s, s.T)

    def test_and_mode_intersects_patterns(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0, 0.0], [4.0, 1.0, 5.0], [0.0, 0.0, 1.0]]))
        s = symmetrize(a, mode="and").toarray()
        assert s[0, 1] == pytest.approx(3.0)  # (2+4)/2, present in both patterns
        assert s[1, 2] == 0.0  # only one triangle had the entry
        np.testing.assert_allclose(s, s.T)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            symmetrize(np.eye(2), mode="xor")

    def test_symmetric_input_unchanged(self):
        a = np.array([[2.0, 1.0], [1.0, 2.0]])
        np.testing.assert_allclose(symmetrize(a).toarray(), a)


class TestPermuteSymmetric:
    def test_values_follow_permutation(self):
        a = np.diag([1.0, 2.0, 3.0])
        p = permute_symmetric(a, [2, 0, 1]).toarray()
        np.testing.assert_allclose(np.diag(p), [3.0, 1.0, 2.0])

    def test_matches_dense_formula(self):
        rng = np.random.default_rng(3)
        dense = rng.random((5, 5))
        dense = dense + dense.T
        perm = np.array([4, 2, 0, 1, 3])
        expected = dense[np.ix_(perm, perm)]
        np.testing.assert_allclose(permute_symmetric(dense, perm).toarray(), expected)

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            permute_symmetric(np.eye(3), [0, 0, 1])


class TestPermutePattern:
    def test_delegates_to_pattern(self):
        p = SymmetricPattern.from_edges(3, [(0, 1)])
        q = permute_pattern(p, [1, 2, 0])
        assert q.num_edges == 1


class TestLowerTriangle:
    def test_includes_diagonal_by_default(self):
        a = np.array([[1.0, 2.0], [2.0, 3.0]])
        lower = lower_triangle(a).toarray()
        np.testing.assert_allclose(lower, [[1.0, 0.0], [2.0, 3.0]])

    def test_excludes_diagonal_when_asked(self):
        a = np.array([[1.0, 2.0], [2.0, 3.0]])
        lower = lower_triangle(a, include_diagonal=False).toarray()
        np.testing.assert_allclose(lower, [[0.0, 0.0], [2.0, 0.0]])


class TestStructuralDensity:
    def test_empty_graph(self):
        assert structural_density(SymmetricPattern.empty(4)) == pytest.approx(4 / 16)

    def test_complete_graph(self):
        p = SymmetricPattern.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert structural_density(p) == pytest.approx(1.0)
