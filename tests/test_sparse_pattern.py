"""Unit and property tests for repro.sparse.pattern.SymmetricPattern."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings

from repro.sparse.pattern import SymmetricPattern
from tests.conftest import small_patterns


class TestConstruction:
    def test_from_edges_basic(self):
        p = SymmetricPattern.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert p.n == 4
        assert p.num_edges == 3
        assert p.nnz_offdiag == 6
        assert p.nnz == 10  # 6 off-diagonal + 4 diagonal

    def test_from_edges_ignores_self_loops(self):
        p = SymmetricPattern.from_edges(3, [(0, 0), (0, 1)])
        assert p.num_edges == 1

    def test_from_edges_merges_duplicates(self):
        p = SymmetricPattern.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert p.num_edges == 1

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SymmetricPattern.from_edges(3, [(0, 3)])

    def test_from_scipy_symmetrizes(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0, 0.0], [0.0, 1.0, 0.0], [0.0, 3.0, 1.0]]))
        p = SymmetricPattern.from_scipy(a)
        assert p.has_edge(0, 1) and p.has_edge(1, 0)
        assert p.has_edge(1, 2) and p.has_edge(2, 1)
        assert not p.has_edge(0, 2)

    def test_from_scipy_drops_small_entries_with_tol(self):
        a = sp.csr_matrix(np.array([[1.0, 1e-15], [1e-15, 1.0]]))
        p = SymmetricPattern.from_scipy(a, tol=1e-12)
        assert p.num_edges == 0

    def test_from_scipy_rejects_rectangular(self):
        with pytest.raises(ValueError):
            SymmetricPattern.from_scipy(sp.csr_matrix(np.zeros((2, 3))))

    def test_from_adjacency_lists_roundtrip(self):
        adj = [[1, 2], [0], [0]]
        p = SymmetricPattern.from_adjacency_lists(adj)
        assert p.to_adjacency_lists() == [[1, 2], [0], [0]]

    def test_from_dense_array(self):
        dense = np.array([[2.0, 1.0, 0.0], [1.0, 2.0, 1.0], [0.0, 1.0, 2.0]])
        p = SymmetricPattern.from_scipy(dense)
        assert p.num_edges == 2

    def test_empty_pattern(self):
        p = SymmetricPattern.empty(5)
        assert p.n == 5
        assert p.num_edges == 0
        assert p.degree().sum() == 0

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            SymmetricPattern(3, [0, 1], [0])


class TestQueries:
    def test_degree_matches_neighbors(self):
        p = SymmetricPattern.from_edges(5, [(0, 1), (0, 2), (0, 3), (3, 4)])
        assert p.degree(0) == 3
        assert p.degree(4) == 1
        np.testing.assert_array_equal(p.degree(), [3, 1, 1, 2, 1])

    def test_neighbors_sorted(self):
        p = SymmetricPattern.from_edges(5, [(2, 4), (2, 0), (2, 3)])
        np.testing.assert_array_equal(p.neighbors(2), [0, 3, 4])

    def test_has_edge_diagonal_always_true(self):
        p = SymmetricPattern.empty(3)
        assert p.has_edge(1, 1)

    def test_max_degree(self):
        p = SymmetricPattern.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert p.max_degree() == 3

    def test_edges_iterates_each_once(self):
        p = SymmetricPattern.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        edges = sorted(p.edges())
        assert edges == [(0, 1), (0, 3), (1, 2), (2, 3)]

    def test_row_slices_cover_all(self):
        p = SymmetricPattern.from_edges(4, [(0, 1), (2, 3)])
        rows = dict(p.row_slices())
        assert set(rows) == {0, 1, 2, 3}
        assert list(rows[0]) == [1]


class TestConversions:
    def test_to_scipy_pattern_has_unit_diagonal(self):
        p = SymmetricPattern.from_edges(3, [(0, 1)])
        m = p.to_scipy("pattern").toarray()
        np.testing.assert_array_equal(np.diag(m), [1, 1, 1])
        assert m[0, 1] == 1 and m[1, 0] == 1

    def test_to_scipy_laplacian_rows_sum_to_zero(self):
        p = SymmetricPattern.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        lap = p.to_scipy("laplacian").toarray()
        np.testing.assert_allclose(lap.sum(axis=1), 0.0)
        np.testing.assert_allclose(lap, lap.T)

    def test_to_scipy_spd_is_positive_definite(self):
        p = SymmetricPattern.from_edges(5, [(i, i + 1) for i in range(4)])
        m = p.to_scipy("spd").toarray()
        eigenvalues = np.linalg.eigvalsh(m)
        assert eigenvalues.min() > 0

    def test_to_scipy_adjacency_zero_diagonal(self):
        p = SymmetricPattern.from_edges(3, [(0, 2)])
        adj = p.to_scipy("adjacency").toarray()
        np.testing.assert_array_equal(np.diag(adj), 0)

    def test_to_scipy_invalid_mode(self):
        with pytest.raises(ValueError):
            SymmetricPattern.empty(2).to_scipy("bogus")

    def test_to_dense_pattern(self):
        p = SymmetricPattern.from_edges(3, [(0, 1)])
        dense = p.to_dense_pattern()
        assert dense[0, 1] and dense[1, 0]
        assert dense[0, 0] and dense[2, 2]
        assert not dense[0, 2]


class TestOperations:
    def test_permute_identity_is_noop(self):
        p = SymmetricPattern.from_edges(5, [(0, 1), (1, 4), (2, 3)])
        assert p.permute(np.arange(5)) == p

    def test_permute_relabels_edges(self):
        p = SymmetricPattern.from_edges(3, [(0, 1)])
        # new-to-old perm: position 0 <- old 2, 1 <- old 0, 2 <- old 1
        q = p.permute([2, 0, 1])
        # old edge (0,1) -> new labels (1, 2)
        assert q.has_edge(1, 2)
        assert not q.has_edge(0, 1)

    def test_permute_matches_scipy_permutation(self):
        p = SymmetricPattern.from_edges(6, [(0, 1), (1, 2), (2, 5), (3, 4), (0, 5)])
        perm = np.array([3, 1, 4, 0, 5, 2])
        expected = p.to_scipy("adjacency")[perm][:, perm].toarray() > 0
        got = p.permute(perm).to_scipy("adjacency").toarray() > 0
        np.testing.assert_array_equal(got, expected)

    def test_subpattern_induced_edges(self):
        p = SymmetricPattern.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub = p.subpattern([1, 2, 3])
        assert sub.n == 3
        assert sorted(sub.edges()) == [(0, 1), (1, 2)]

    def test_subpattern_rejects_duplicates(self):
        p = SymmetricPattern.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            p.subpattern([0, 0])

    def test_subpattern_rejects_out_of_range(self):
        p = SymmetricPattern.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            p.subpattern([0, 5])

    def test_copy_is_independent(self):
        p = SymmetricPattern.from_edges(3, [(0, 1)])
        q = p.copy()
        q.indices[0] = 2
        assert p.indices[0] == 1

    def test_equality(self):
        a = SymmetricPattern.from_edges(3, [(0, 1)])
        b = SymmetricPattern.from_edges(3, [(1, 0)])
        c = SymmetricPattern.from_edges(3, [(0, 2)])
        assert a == b
        assert a != c

    def test_validate_passes_on_well_formed(self):
        SymmetricPattern.from_edges(6, [(0, 1), (2, 3), (4, 5)]).validate()

    def test_validate_detects_asymmetry(self):
        p = SymmetricPattern(2, [0, 1, 1], [1])  # edge 0->1 without 1->0
        with pytest.raises(ValueError, match="symmetric"):
            p.validate()

    def test_repr_mentions_size(self):
        assert "n=3" in repr(SymmetricPattern.empty(3))


class TestPatternProperties:
    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_generated_patterns_are_valid(self, pattern):
        pattern.validate()

    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_degree_sum_equals_twice_edges(self, pattern):
        assert int(pattern.degree().sum()) == 2 * pattern.num_edges

    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_permute_preserves_edge_count(self, pattern):
        rng = np.random.default_rng(0)
        perm = rng.permutation(pattern.n)
        assert pattern.permute(perm).num_edges == pattern.num_edges

    @given(small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_double_permutation_roundtrip(self, pattern):
        rng = np.random.default_rng(1)
        perm = rng.permutation(pattern.n)
        # permuting by perm then by its inverse relabelling returns the original
        assert pattern.permute(perm).permute(_inverse_of(perm)) == pattern


def _inverse_of(perm: np.ndarray) -> np.ndarray:
    """The permutation that undoes a new-to-old relabelling when applied after it."""
    perm = np.asarray(perm)
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size)
    return inverse
