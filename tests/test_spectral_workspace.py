"""The spectral execution-plan layer (repro.eigen.workspace).

The workspace memoizes pure functions of the immutable pattern structure —
Laplacian, component split, coarsening hierarchy — so the *warm* cache path
must be **bit-identical** to a cold run for every registered spectral/hybrid
algorithm: same permutation, same envelope metrics, same consumed random
stream.  That property is what lets the per-worker problem cache share one
plan across a problem's spectral and hybrid cells and across bench repeats.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.batch import BatchTask, derive_seed
from repro.batch.engine import execute_task
from repro.collections.generators import random_geometric_pattern
from repro.collections.meshes import grid2d_pattern
from repro.eigen.multilevel import multilevel_fiedler
from repro.eigen.workspace import SpectralWorkspace, spectral_workspace
from repro.envelope.metrics import envelope_statistics
from repro.graph.laplacian import adjacency_matrix, laplacian_matrix
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.sparse.pattern import SymmetricPattern

SPECTRAL_ALGORITHMS = ("spectral", "hybrid")


def _patterns():
    """Connected, disconnected and pathological structures."""
    rng = np.random.default_rng(7)
    disconnected = SymmetricPattern.from_edges(
        19,
        [(i, i + 1) for i in range(8)]                 # a path component
        + [(10 + i, 10 + (i + 1) % 5) for i in range(5)]  # a cycle component
        # vertices 15..18 isolated
    )
    edges = [(int(a), int(b)) for a, b in rng.integers(0, 40, size=(120, 2)) if a != b]
    return [
        grid2d_pattern(9, 8),
        random_geometric_pattern(70, seed=3),
        disconnected,
        SymmetricPattern.from_edges(40, edges),
    ]


@pytest.mark.parametrize("algorithm", SPECTRAL_ALGORITHMS)
def test_warm_workspace_is_bit_identical_to_cold(algorithm):
    """Orderings AND metrics from a warm (cached) pattern match a cold run."""
    func = ORDERING_ALGORITHMS[algorithm]
    for seed, pattern in enumerate(_patterns()):
        cold_pattern = pattern.copy()  # fresh object: empty workspace
        cold = func(cold_pattern, rng=np.random.default_rng(seed))
        first = func(pattern, rng=np.random.default_rng(seed))   # populates cache
        warm = func(pattern, rng=np.random.default_rng(seed))    # served from cache
        assert np.array_equal(first.perm, cold.perm)
        assert np.array_equal(warm.perm, cold.perm), (
            f"{algorithm} warm run diverged from cold on pattern #{seed}"
        )
        cold_stats = envelope_statistics(cold_pattern, cold.perm).as_dict()
        warm_stats = envelope_statistics(pattern, warm.perm).as_dict()
        assert warm_stats == cold_stats


@pytest.mark.parametrize("algorithm", SPECTRAL_ALGORITHMS)
def test_warm_task_record_matches_cold_canonical_form(algorithm):
    """The batch engine's record (metrics included) is cache-invariant."""
    pattern = random_geometric_pattern(80, seed=11)
    task = BatchTask(problem="X", algorithm=algorithm, scale=None,
                     seed=derive_seed(0, "X", algorithm))
    cold = execute_task(task, pattern=pattern.copy())
    execute_task(task, pattern=pattern)  # warm the workspace
    warm = execute_task(task, pattern=pattern)
    assert cold.status == warm.status == "ok"
    assert warm.to_dict(include_timing=False) == cold.to_dict(include_timing=False)


def test_workspace_attaches_once_and_counts_hits():
    pattern = grid2d_pattern(12, 10)
    ws = spectral_workspace(pattern)
    assert spectral_workspace(pattern) is ws
    lap = ws.laplacian()
    assert ws.laplacian() is lap
    assert ws.info["laplacian_builds"] == 1
    assert ws.info["laplacian_hits"] == 1
    num, labels = ws.components()
    assert num == 1 and labels.shape == (pattern.n,)
    ws.components()
    assert ws.info["components_hits"] == 1


def test_derived_patterns_get_fresh_workspaces():
    pattern = grid2d_pattern(6, 5)
    ws = spectral_workspace(pattern)
    assert spectral_workspace(pattern.copy()) is not ws
    perm = np.arange(pattern.n)[::-1].copy()
    assert spectral_workspace(pattern.permute(perm)) is not ws


def test_component_split_matches_manual_split():
    pattern = _patterns()[2]  # the disconnected one
    ws = spectral_workspace(pattern)
    num, labels = ws.components()
    split = ws.component_split()
    assert len(split) == num
    for c, (vertices, sub) in enumerate(split):
        np.testing.assert_array_equal(vertices, np.flatnonzero(labels == c))
        if vertices.size == 1:
            assert sub is None
        else:
            expected = pattern.subpattern(vertices)
            assert sub == expected
    # second call is served from the cache with the same objects
    again = ws.component_split()
    assert all(a is b or (a[1] is b[1]) for a, b in zip(split, again))
    assert ws.info["split_hits"] >= 1


def test_hierarchy_cached_for_deterministic_strategies():
    pattern = random_geometric_pattern(300, seed=5)
    ws = spectral_workspace(pattern)
    rng = np.random.default_rng(0)
    levels, laps = ws.hierarchy(40, 50, "degree", rng)
    levels2, laps2 = ws.hierarchy(40, 50, "degree", np.random.default_rng(1))
    assert levels2 is levels and laps2 is laps
    assert ws.info["hierarchy_builds"] == 1
    assert ws.info["hierarchy_hits"] == 1
    assert len(laps) == len(levels)
    for level, lap in zip(levels, laps):
        assert lap.shape == (level.coarse_pattern.n,) * 2
    # a different key is a different cache entry
    ws.hierarchy(60, 50, "degree", rng)
    assert ws.info["hierarchy_builds"] == 2


def test_random_strategy_bypasses_the_cache_and_preserves_rng_stream():
    pattern = random_geometric_pattern(300, seed=5)
    ws = spectral_workspace(pattern)
    a = multilevel_fiedler(pattern, coarsest_size=40, mis_strategy="random", rng=9)
    b = multilevel_fiedler(pattern, coarsest_size=40, mis_strategy="random", rng=9)
    assert ws.info["hierarchy_uncached"] >= 2
    assert a.eigenvalue == pytest.approx(b.eigenvalue, rel=1e-12)
    np.testing.assert_allclose(a.eigenvector, b.eigenvector)


def test_direct_laplacian_build_matches_legacy_construction():
    """The fused CSR assembly is structurally identical to diags(d) - B."""
    cases = _patterns() + [
        SymmetricPattern.from_edges(5, []),        # isolated vertices only
        SymmetricPattern.from_edges(1, []),
        SymmetricPattern.from_edges(0, []),
    ]
    for pattern in cases:
        direct = laplacian_matrix(pattern)
        b = adjacency_matrix(pattern)
        degrees = np.asarray(b.sum(axis=1)).ravel()
        legacy = (sp.diags(degrees, format="csr") - b).tocsr()
        assert direct.shape == legacy.shape
        np.testing.assert_array_equal(direct.indptr, legacy.indptr)
        np.testing.assert_array_equal(direct.indices, legacy.indices)
        np.testing.assert_array_equal(direct.data, legacy.data)


def test_workspace_counters_start_clean():
    ws = SpectralWorkspace(grid2d_pattern(4, 4))
    assert all(v == 0 for v in ws.info.values())
