"""The persistent artifact store (repro.store) and the atomic-write helper.

Covers the tentpole contracts of the store:

* content addressing — an entry is only ever served for its exact
  (kind, builder version, pattern digest, params) address;
* crash safety — killed/truncated/corrupted entries read back as a clean
  miss (and are evicted), never a traceback;
* warm-from-disk == cold **byte-identity** across every registered
  spectral/hybrid algorithm, including disconnected patterns, with the rng
  stream preserved across Fiedler cache hits.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.batch import BatchTask, derive_seed
from repro.batch.engine import clear_problem_cache, execute_task
from repro.collections.generators import random_geometric_pattern
from repro.collections.meshes import grid2d_pattern
from repro.eigen.fiedler import fiedler_vector
from repro.eigen.multilevel import multilevel_fiedler
from repro.eigen.workspace import spectral_workspace
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.sparse.pattern import SymmetricPattern
from repro.store import (
    ArtifactStore,
    get_default_store,
    pattern_digest,
    reset_default_store,
    set_default_store,
)
from repro.store import spectral as codecs
from repro.utils.atomic import atomic_output_file, atomic_write_text


@pytest.fixture(autouse=True)
def _isolated_store(monkeypatch):
    """No ambient store unless a test installs one; always reset after."""
    monkeypatch.delenv("REPRO_STORE", raising=False)
    reset_default_store()
    yield
    reset_default_store()
    clear_problem_cache()


def _patterns():
    disconnected = SymmetricPattern.from_edges(
        19,
        [(i, i + 1) for i in range(8)]
        + [(10 + i, 10 + (i + 1) % 5) for i in range(5)]
        # vertices 15..18 isolated
    )
    return [
        grid2d_pattern(9, 8),
        random_geometric_pattern(70, seed=3),
        disconnected,
        random_geometric_pattern(300, seed=5),
    ]


# --------------------------------------------------------------------------- #
# atomic writes
# --------------------------------------------------------------------------- #
class TestAtomicWrite:
    def test_write_and_overwrite(self, tmp_path):
        target = tmp_path / "deep" / "a.json"
        atomic_write_text(target, "one")
        assert target.read_text() == "one"
        atomic_write_text(target, "two")
        assert target.read_text() == "two"

    def test_exception_leaves_target_and_no_droppings(self, tmp_path):
        target = tmp_path / "a.json"
        atomic_write_text(target, "original")
        with pytest.raises(RuntimeError):
            with atomic_output_file(target) as tmp:
                tmp.write_text("partial")
                raise RuntimeError("killed mid-write")
        assert target.read_text() == "original"
        assert list(tmp_path.iterdir()) == [target]

    def test_crash_between_write_and_replace_is_invisible(self, tmp_path, monkeypatch):
        """A kill right before os.replace leaves the old file complete."""
        target = tmp_path / "a.json"
        atomic_write_text(target, "old")
        real_replace = os.replace

        def exploding_replace(src, dst):
            raise KeyboardInterrupt  # the SIGINT flavour of a kill

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(KeyboardInterrupt):
            atomic_write_text(target, "new")
        monkeypatch.setattr(os, "replace", real_replace)
        assert target.read_text() == "old"


# --------------------------------------------------------------------------- #
# addressing and the corrupt-is-a-miss contract
# --------------------------------------------------------------------------- #
class TestArtifactStore:
    def test_roundtrip_and_stats(self, tmp_path):
        store = ArtifactStore(tmp_path)
        arrays = {"x": np.arange(5, dtype=np.int64), "y": np.ones(3)}
        store.save("laplacian", 1, "d" * 64, arrays)
        assert store.stats["writes"] == 1
        loaded = store.load("laplacian", 1, "d" * 64)
        assert store.stats["hits"] == 1
        np.testing.assert_array_equal(loaded["x"], arrays["x"])
        assert loaded["x"].dtype == np.int64

    def test_absent_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load("laplacian", 1, "0" * 64) is None
        assert store.stats["misses"] == 1

    @pytest.mark.parametrize("damage", ["truncate", "garbage", "empty"])
    def test_damaged_entry_is_a_miss_and_evicted(self, tmp_path, damage):
        store = ArtifactStore(tmp_path)
        path = store.save("laplacian", 1, "d" * 64, {"x": np.arange(4)})
        payload = path.read_bytes()
        if damage == "truncate":
            path.write_bytes(payload[: len(payload) // 2])
        elif damage == "garbage":
            path.write_bytes(b"not a zip file at all")
        else:
            path.write_bytes(b"")
        assert store.load("laplacian", 1, "d" * 64) is None
        assert store.stats["corrupt"] == 1
        assert not path.exists()  # evicted so it stops costing reads

    def test_kind_version_digest_params_all_address(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("laplacian", 1, "d" * 64, {"x": np.arange(4)}, params={"a": 1})
        assert store.load("components", 1, "d" * 64, params={"a": 1}) is None
        assert store.load("laplacian", 2, "d" * 64, params={"a": 1}) is None
        assert store.load("laplacian", 1, "e" * 64, params={"a": 1}) is None
        assert store.load("laplacian", 1, "d" * 64, params={"a": 2}) is None
        assert store.load("laplacian", 1, "d" * 64, params={"a": 1}) is not None

    def test_swapped_entry_fails_meta_check(self, tmp_path):
        """An entry renamed onto another address reads as a miss (stale)."""
        store = ArtifactStore(tmp_path)
        src = store.save("laplacian", 1, "d" * 64, {"x": np.arange(4)})
        dst = store.path_for(store.key("laplacian", 2, "d" * 64))
        dst.parent.mkdir(parents=True, exist_ok=True)
        os.replace(src, dst)
        assert store.load("laplacian", 2, "d" * 64) is None
        assert store.stats["corrupt"] == 1

    def test_entries_clear_info(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("laplacian", 1, "d" * 64, {"x": np.arange(4)})
        store.save("fiedler", 1, "e" * 64, {"v": np.ones(3)})
        rows = store.entries()
        assert sorted(row["kind"] for row in rows) == ["fiedler", "laplacian"]
        info = store.info()
        assert info["entries"] == 2
        assert set(info["kinds"]) == {"fiedler", "laplacian"}
        assert store.clear() == 2
        assert store.entries() == []
        assert store.clear() == 0

    def test_default_store_resolution(self, tmp_path, monkeypatch):
        assert get_default_store() is None
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        via_env = get_default_store()
        assert isinstance(via_env, ArtifactStore)
        assert get_default_store() is via_env  # memoized per root
        override = ArtifactStore(tmp_path / "other")
        set_default_store(override)
        assert get_default_store() is override
        set_default_store(None)  # explicit disable beats the env var
        assert get_default_store() is None


# --------------------------------------------------------------------------- #
# codec roundtrips
# --------------------------------------------------------------------------- #
class TestCodecs:
    def test_pattern_digest_separates_structures(self):
        a, b = grid2d_pattern(4, 4), grid2d_pattern(4, 5)
        assert pattern_digest(a) == pattern_digest(a.copy())
        assert pattern_digest(a) != pattern_digest(b)

    def test_laplacian_roundtrip_bit_identical(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for pattern in _patterns():
            digest = pattern_digest(pattern)
            lap = spectral_workspace(pattern.copy()).laplacian()
            codecs.save_laplacian(store, digest, lap)
            loaded = codecs.load_laplacian(store, digest)
            np.testing.assert_array_equal(loaded.indptr, lap.indptr)
            np.testing.assert_array_equal(loaded.indices, lap.indices)
            np.testing.assert_array_equal(loaded.data, lap.data)
            assert loaded.indices.dtype == lap.indices.dtype
            assert loaded.data.dtype == lap.data.dtype

    def test_components_and_split_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        pattern = _patterns()[2]  # disconnected, with singleton components
        ws = spectral_workspace(pattern)
        digest = pattern_digest(pattern)
        num, labels = ws.components()
        codecs.save_components(store, digest, num, labels)
        loaded_num, loaded_labels = codecs.load_components(store, digest)
        assert loaded_num == num
        np.testing.assert_array_equal(loaded_labels, labels)
        split = ws.component_split()
        codecs.save_split(store, digest, split)
        loaded = codecs.load_split(store, digest)
        assert len(loaded) == len(split)
        for (v, sub), (lv, lsub) in zip(split, loaded):
            np.testing.assert_array_equal(lv, v)
            assert (sub is None) == (lsub is None)
            if sub is not None:
                assert lsub == sub

    def test_hierarchy_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        pattern = random_geometric_pattern(300, seed=5)
        ws = spectral_workspace(pattern)
        digest = pattern_digest(pattern)
        levels, laps = ws.hierarchy(40, 50, "degree", np.random.default_rng(0))
        codecs.save_hierarchy(store, digest, 40, 50, "degree", levels)
        loaded = codecs.load_hierarchy(store, digest, 40, 50, "degree")
        assert len(loaded) == len(levels)
        for built, read in zip(levels, loaded):
            assert read.fine_n == built.fine_n
            assert read.coarse_pattern == built.coarse_pattern
            np.testing.assert_array_equal(read.coarse_vertices, built.coarse_vertices)
            np.testing.assert_array_equal(read.domain_of, built.domain_of)
        # a different hierarchy key is a different (absent) entry
        assert codecs.load_hierarchy(store, digest, 60, 50, "degree") is None


# --------------------------------------------------------------------------- #
# warm-from-disk == cold (the tentpole property)
# --------------------------------------------------------------------------- #
SPECTRAL_ALGORITHMS = ("spectral", "hybrid")


class TestWarmFromDiskIdentity:
    @pytest.mark.parametrize("algorithm", SPECTRAL_ALGORITHMS)
    def test_orderings_bit_identical_and_store_hit(self, tmp_path, algorithm):
        func = ORDERING_ALGORITHMS[algorithm]
        store = ArtifactStore(tmp_path)
        for seed, pattern in enumerate(_patterns()):
            cold = func(pattern.copy(), rng=np.random.default_rng(seed))
            set_default_store(store)
            populate = func(pattern.copy(), rng=np.random.default_rng(seed))
            hits_before = store.stats["hits"]
            # a FRESH pattern object: only the disk can warm it
            warm = func(pattern.copy(), rng=np.random.default_rng(seed))
            set_default_store(None)
            assert np.array_equal(populate.perm, cold.perm)
            assert np.array_equal(warm.perm, cold.perm), (
                f"{algorithm} warm-from-disk diverged from cold on pattern #{seed}"
            )
            assert store.stats["hits"] > hits_before

    def test_rng_stream_preserved_across_fiedler_hit(self, tmp_path):
        """After a cached eigensolve, the caller's rng continues identically."""
        pattern = random_geometric_pattern(200, seed=7)
        rng_cold = np.random.default_rng(3)
        cold = fiedler_vector(pattern.copy(), method="lanczos", rng=rng_cold)
        cold_next = rng_cold.standard_normal(4)

        set_default_store(ArtifactStore(tmp_path))
        rng_populate = np.random.default_rng(3)
        fiedler_vector(pattern.copy(), method="lanczos", rng=rng_populate)
        rng_warm = np.random.default_rng(3)
        warm = fiedler_vector(pattern.copy(), method="lanczos", rng=rng_warm)
        warm_next = rng_warm.standard_normal(4)

        assert warm.eigenvalue == cold.eigenvalue
        np.testing.assert_array_equal(warm.eigenvector, cold.eigenvector)
        assert warm.method == cold.method
        np.testing.assert_array_equal(warm_next, cold_next)

    def test_multilevel_warm_identity(self, tmp_path):
        pattern = random_geometric_pattern(300, seed=5)
        cold = multilevel_fiedler(pattern.copy(), coarsest_size=40, rng=9)
        set_default_store(ArtifactStore(tmp_path))
        multilevel_fiedler(pattern.copy(), coarsest_size=40, rng=9)
        warm = multilevel_fiedler(pattern.copy(), coarsest_size=40, rng=9)
        assert warm.eigenvalue == cold.eigenvalue
        np.testing.assert_array_equal(warm.eigenvector, cold.eigenvector)

    def test_task_records_identical_with_store(self, tmp_path):
        """The batch engine's canonical record is store-invariant."""
        pattern = random_geometric_pattern(80, seed=11)
        task = BatchTask(problem="X", algorithm="spectral", scale=None,
                         seed=derive_seed(0, "X", "spectral"))
        cold = execute_task(task, pattern=pattern.copy())
        set_default_store(ArtifactStore(tmp_path))
        execute_task(task, pattern=pattern.copy())
        warm = execute_task(task, pattern=pattern.copy())
        assert cold.status == warm.status == "ok"
        assert warm.to_dict(include_timing=False) == cold.to_dict(include_timing=False)

    def test_corrupted_store_entries_fall_back_to_building(self, tmp_path):
        """Truncating every entry mid-byte never crashes a warm run."""
        store = ArtifactStore(tmp_path)
        set_default_store(store)
        pattern = _patterns()[1]
        cold = ORDERING_ALGORITHMS["spectral"](
            pattern.copy(), rng=np.random.default_rng(1)
        )
        for row in store.entries():
            payload = row["path"].read_bytes()
            row["path"].write_bytes(payload[: max(1, len(payload) // 3)])
        rebuilt = ORDERING_ALGORITHMS["spectral"](
            pattern.copy(), rng=np.random.default_rng(1)
        )
        assert np.array_equal(rebuilt.perm, cold.perm)
        assert store.stats["corrupt"] > 0

    def test_random_mis_strategy_never_cached(self, tmp_path):
        store = ArtifactStore(tmp_path)
        set_default_store(store)
        pattern = random_geometric_pattern(300, seed=5)
        multilevel_fiedler(pattern, coarsest_size=40, mis_strategy="random", rng=9)
        kinds = {row["kind"] for row in store.entries()}
        assert "hierarchy" not in kinds


# --------------------------------------------------------------------------- #
# derived patterns never share cached state (satellite audit)
# --------------------------------------------------------------------------- #
class TestDerivedPatternFreshness:
    def test_subpattern_builds_its_own_workspace(self):
        pattern = grid2d_pattern(6, 5)
        ws = spectral_workspace(pattern)
        ws.laplacian()
        sub = pattern.subpattern(np.arange(12))
        assert sub._workspace is None
        assert spectral_workspace(sub) is not ws

    def test_pickle_drops_workspace_and_degree_caches(self):
        pattern = grid2d_pattern(6, 5)
        spectral_workspace(pattern).laplacian()
        pattern.degree()
        assert pattern._workspace is not None and pattern._degrees is not None
        clone = pickle.loads(pickle.dumps(pattern))
        assert clone == pattern
        assert clone._workspace is None
        assert clone._degrees is None
        # and the clone still works end to end
        assert spectral_workspace(clone).laplacian().shape == (30, 30)

    def test_workspace_digest_matches_codec_digest(self):
        pattern = grid2d_pattern(5, 5)
        assert spectral_workspace(pattern).digest() == pattern_digest(pattern)
