"""Unit tests for repro.utils.rng."""

import numpy as np

from repro.utils.rng import DEFAULT_SEED, default_rng


class TestDefaultRng:
    def test_none_uses_default_seed(self):
        a = default_rng(None).random(5)
        b = default_rng(DEFAULT_SEED).random(5)
        np.testing.assert_array_equal(a, b)

    def test_integer_seed_is_deterministic(self):
        a = default_rng(42).random(8)
        b = default_rng(42).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = default_rng(1).random(8)
        b = default_rng(2).random(8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert default_rng(gen) is gen

    def test_returns_generator_type(self):
        assert isinstance(default_rng(0), np.random.Generator)
