"""Unit tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import Timer, timed


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.002)
        assert t.elapsed > 0.0
        assert len(t.laps) == 1

    def test_multiple_laps_accumulate(self):
        t = Timer()
        for _ in range(3):
            with t:
                pass
        assert len(t.laps) == 3
        assert t.elapsed == pytest.approx(sum(t.laps))

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.laps == []

    def test_stop_returns_lap(self):
        t = Timer().start()
        lap = t.stop()
        assert lap >= 0.0
        assert lap == t.laps[-1]


class TestTimed:
    def test_records_into_sink(self):
        sink = {}
        with timed("phase", sink):
            time.sleep(0.001)
        assert sink["phase"] > 0.0

    def test_accumulates_same_label(self):
        sink = {}
        with timed("x", sink):
            pass
        first = sink["x"]
        with timed("x", sink):
            pass
        assert sink["x"] >= first

    def test_none_sink_is_allowed(self):
        with timed("ignored", None):
            pass  # must not raise

    def test_exception_still_records(self):
        sink = {}
        with pytest.raises(RuntimeError):
            with timed("boom", sink):
                raise RuntimeError("boom")
        assert "boom" in sink
