"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils.validation import (
    as_int_array,
    check_permutation,
    check_square,
    check_symmetric_structure,
    require_positive_int,
)


class TestRequirePositiveInt:
    def test_accepts_plain_int(self):
        assert require_positive_int(5, "x") == 5

    def test_accepts_numpy_integer(self):
        assert require_positive_int(np.int64(7), "x") == 7

    def test_accepts_integral_float(self):
        assert require_positive_int(3.0, "x") == 3

    def test_rejects_fractional_float(self):
        with pytest.raises(TypeError, match="x"):
            require_positive_int(3.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="bool"):
            require_positive_int(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            require_positive_int("4", "x")

    def test_enforces_minimum(self):
        with pytest.raises(ValueError, match=">= 1"):
            require_positive_int(0, "x")

    def test_custom_minimum(self):
        assert require_positive_int(2, "x", minimum=2) == 2
        with pytest.raises(ValueError):
            require_positive_int(1, "x", minimum=2)


class TestAsIntArray:
    def test_converts_list(self):
        out = as_int_array([1, 2, 3], "v")
        assert out.dtype == np.intp
        np.testing.assert_array_equal(out, [1, 2, 3])

    def test_accepts_integral_floats(self):
        out = as_int_array(np.array([1.0, 2.0]), "v")
        np.testing.assert_array_equal(out, [1, 2])

    def test_rejects_fractional_floats(self):
        with pytest.raises(TypeError):
            as_int_array(np.array([1.5, 2.0]), "v")

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            as_int_array(np.zeros((2, 2), dtype=int), "v")


class TestCheckPermutation:
    def test_valid_permutation(self):
        perm = check_permutation([2, 0, 1])
        np.testing.assert_array_equal(perm, [2, 0, 1])

    def test_identity(self):
        perm = check_permutation(np.arange(5), 5)
        np.testing.assert_array_equal(perm, np.arange(5))

    def test_empty(self):
        assert check_permutation([], 0).size == 0

    def test_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            check_permutation([0, 1], 3)

    def test_duplicate_entries(self):
        with pytest.raises(ValueError, match="not a permutation"):
            check_permutation([0, 0, 2])

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="lie in"):
            check_permutation([0, 1, 3])

    def test_negative_entry(self):
        with pytest.raises(ValueError):
            check_permutation([-1, 0, 1])


class TestCheckSquare:
    def test_dense(self):
        m, n = check_square(np.eye(4))
        assert n == 4

    def test_sparse(self):
        m, n = check_square(sp.eye(6, format="csr"))
        assert n == 6

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            check_square(np.zeros((3, 4)))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            check_square(np.zeros(3))


class TestCheckSymmetricStructure:
    def test_symmetric_sparse_ok(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [3.0, 4.0]]))
        check_symmetric_structure(a)  # structure symmetric even if values differ

    def test_unsymmetric_structure_sparse(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 4.0]]))
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric_structure(a)

    def test_unsymmetric_structure_dense(self):
        a = np.array([[1.0, 0.0], [5.0, 1.0]])
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric_structure(a)

    def test_tolerance_drops_small_entries(self):
        a = sp.csr_matrix(np.array([[1.0, 1e-14], [0.0, 1.0]]))
        check_symmetric_structure(a, tol=1e-12)  # tiny entry ignored

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            check_symmetric_structure(np.zeros((2, 3)))
